package rmssd_test

import (
	"math"
	"testing"
	"time"

	"rmssd"
)

func tinyRMC1() rmssd.ModelConfig {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(32 << 20)
	return cfg
}

// The public API's headline path: build a device, run a batch, match the
// reference model bit for bit.
func TestPublicQuickstartPath(t *testing.T) {
	cfg := tinyRMC1()
	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 42,
	})
	const batch = 3
	denses := make([]rmssd.Vector, batch)
	for i := range denses {
		denses[i] = gen.DenseInput(i, cfg.DenseDim)
	}
	sparses := gen.Batch(batch)
	outs, done, bd, err := dev.InferBatch(0, denses, sparses)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || bd.Emb <= 0 {
		t.Fatal("no simulated time")
	}
	for i, out := range outs {
		want := dev.Model().Infer(denses[i], sparses[i])
		if math.Abs(float64(out-want)) > 1e-5 {
			t.Fatalf("inference %d: %v vs reference %v", i, out, want)
		}
	}
}

func TestPublicDefaultDesignIsFullRMSSD(t *testing.T) {
	cfg := tinyRMC1()
	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	if dev.MLP().Design() != rmssd.DesignSearched {
		t.Fatalf("default design = %v, want searched", dev.MLP().Design())
	}
	naive, err := rmssd.NewNaiveDevice(cfg, rmssd.DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.MLP().Design() != rmssd.DesignNaive {
		t.Fatal("NewNaiveDevice did not select the naive design")
	}
}

func TestPublicBaselinesAgree(t *testing.T) {
	cfg := tinyRMC1()
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 9,
	})
	dense := gen.DenseInput(0, cfg.DenseDim)
	sparse := gen.Inference()

	env, err := rmssd.NewEnv(cfg, rmssd.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	m := env.M
	want := m.Infer(dense, sparse)
	systems := []rmssd.System{
		rmssd.NewDRAM(m),
		rmssd.NewSSDS(env),
	}
	for _, sys := range systems {
		got, _, _ := sys.Infer(0, dense, sparse)
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Fatalf("%s: %v vs %v", sys.Name(), got, want)
		}
	}
}

func TestPublicDeterminism(t *testing.T) {
	run := func() (float32, time.Duration) {
		cfg := tinyRMC1()
		dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
		gen := rmssd.MustNewTrace(rmssd.TraceConfig{
			Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 1,
		})
		outs, done, _, err := dev.InferBatch(0,
			[]rmssd.Vector{gen.DenseInput(0, cfg.DenseDim)}, gen.Batch(1))
		if err != nil {
			t.Fatal(err)
		}
		return outs[0], done
	}
	o1, d1 := run()
	o2, d2 := run()
	if o1 != o2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", o1, d1, o2, d2)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(rmssd.Experiments()) != 19 {
		t.Fatalf("experiment count = %d", len(rmssd.Experiments()))
	}
	e, err := rmssd.FindExperiment("table3")
	if err != nil {
		t.Fatal(err)
	}
	tabs := e.Run(rmssd.ExperimentOptions{Iterations: 2, TableBytes: 32 << 20})
	if len(tabs) == 0 || len(tabs[0].Rows) != 5 {
		t.Fatal("table3 should list 5 models")
	}
}

func TestPublicTraceAnalysis(t *testing.T) {
	stats := rmssd.AnalyzeTrace([]int64{1, 1, 2, 3}, 1)
	if stats.TotalLookups != 4 || stats.TotalIndices != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPublicModelZoo(t *testing.T) {
	if len(rmssd.AllModels()) != 5 {
		t.Fatal("expected 5 built-in models")
	}
	cfg, err := rmssd.ModelByName("NCF")
	if err != nil || cfg.Lookups != 1 {
		t.Fatalf("NCF lookup count = %d, err %v", cfg.Lookups, err)
	}
	if _, err := rmssd.BuildModel(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPartBudgets(t *testing.T) {
	if rmssd.XCVU9P.Name != "XCVU9P" || rmssd.XC7A200T.Name != "XC7A200T" {
		t.Fatal("FPGA part budgets not exported correctly")
	}
}

func TestPublicSessionAPI(t *testing.T) {
	dev := rmssd.MustNewDevice(tinyRMC1(), rmssd.DeviceOptions{})
	var s *rmssd.Session = dev.NewSession("alice")
	if err := s.CreateTable(0); err != nil {
		t.Fatal(err)
	}
	fd, err := s.OpenTable(0)
	if err != nil || fd == 0 {
		t.Fatalf("open: %d %v", fd, err)
	}
}
