// Command rmperf measures the host-side performance of the parallel
// simulation core and writes a machine-readable report (BENCH_simcore.json)
// so the perf trajectory is tracked across PRs.
//
// Two measurements:
//
//  1. Sweep: a fixed set of rmbench experiments is evaluated twice — once
//     with -parallel 1 (the plain sequential loop) and once with -parallel N
//     worker goroutines — and the wall-clock for each run is recorded, along
//     with whether the rendered tables were byte-identical (they must be:
//     every cell is a pure function of its options and index).
//
//  2. Serving: the sharded rmserve front-end (N devices, each with its own
//     virtual clock, behind the coalescing pool) is hammered by concurrent
//     clients and the host-side request throughput is recorded next to the
//     aggregate simulated steady-state QPS.
//
// Every number here is a host measurement, so the wall clock is the right
// clock; each use is annotated for the wallclock analyzer. Simulated
// figures (tables, QPS) remain exclusively virtual-time products.
//
// Usage:
//
//	rmperf                          # defaults, writes BENCH_simcore.json
//	rmperf -o - -exps fig10,fig12   # custom sweep, JSON to stdout
//	rmperf -maxprocs 4              # pin GOMAXPROCS for the measurement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"rmssd"
	"rmssd/internal/bench"
	"rmssd/internal/serving"
)

// SweepReport records the fixed-sweep wall-clock comparison.
type SweepReport struct {
	Experiments       []string `json:"experiments"`
	TableMB           int64    `json:"table_mb"`
	Parallel          int      `json:"parallel"`
	SequentialSeconds float64  `json:"sequential_seconds"`
	ParallelSeconds   float64  `json:"parallel_seconds"`
	Speedup           float64  `json:"speedup"`
	ByteIdentical     bool     `json:"byte_identical"`
	// Status is "ok", or "skipped_overhead_bound" when the host exposes a
	// single CPU: worker goroutines can only add scheduling overhead there,
	// so the parallel leg is not run and its fields stay zero.
	Status string `json:"status"`
}

// ServeReport records the sharded-serving throughput measurement.
type ServeReport struct {
	Model             string  `json:"model"`
	TableMB           int64   `json:"table_mb"`
	Shards            int     `json:"shards"`
	Clients           int     `json:"clients"`
	Requests          int64   `json:"requests"`
	Inferences        int64   `json:"inferences"`
	MeanBatch         float64 `json:"mean_coalesced_batch"`
	WallSeconds       float64 `json:"wall_seconds"`
	HostRequestsPerS  float64 `json:"host_requests_per_second"`
	HostInferPerS     float64 `json:"host_inferences_per_second"`
	SimulatedAggQPS   float64 `json:"simulated_aggregate_qps"`
	SimulatedShardQPS float64 `json:"simulated_per_shard_qps"`
}

// Report is the full BENCH_simcore.json payload.
type Report struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Note       string         `json:"note,omitempty"`
	Sweep      SweepReport    `json:"sweep"`
	Serve      ServeReport    `json:"rmserve"`
	Micro      MicroReport    `json:"micro"`
	Locality   LocalityReport `json:"locality"`
	Obs        ObsReport      `json:"obs"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_simcore.json", "output path ('-' = stdout)")
		exps     = flag.String("exps", "fig10,fig12,ablation", "comma-separated sweep experiments")
		tableMB  = flag.Int64("table-mb", 256, "sweep embedding table budget in MiB")
		parallel = flag.Int("parallel", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
		maxprocs = flag.Int("maxprocs", 0, "if > 0, set GOMAXPROCS for the whole measurement")
		model    = flag.String("model", "RMC1", "serving model (RMC1/RMC2/RMC3/NCF/WnD)")
		srvMB    = flag.Int64("serve-table-mb", 64, "serving embedding table budget in MiB")
		shards   = flag.Int("shards", 0, "serving device shards (0 = GOMAXPROCS)")
		clients  = flag.Int("clients", 16, "concurrent serving clients")
		requests = flag.Int("requests", 2000, "total serving requests")
		reqBatch = flag.Int("req-batch", 4, "inferences per serving request")

		locTableMB = flag.Int64("locality-table-mb", 64, "locality comparison embedding table budget in MiB")
		locCacheMB = flag.Int64("locality-cache-mb", 8, "locality comparison EV cache budget in MiB")
		locInfer   = flag.Int("locality-inferences", 512, "locality comparison inference count")
		locBatch   = flag.Int("locality-batch", 32, "locality comparison device batch size")

		obsTableMB = flag.Int64("obs-table-mb", 64, "observability measurement embedding table budget in MiB")
		obsShards  = flag.Int("obs-shards", 2, "observability measurement device shards")
		obsReqs    = flag.Int("obs-requests", 400, "observability measurement replay requests")
	)
	flag.Parse()
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	rep := Report{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	if rep.NumCPU < 4 {
		rep.Note = fmt.Sprintf("host exposes %d CPU(s); wall-clock speedup requires real cores — rerun on a >=4-core host for the parallel-vs-sequential comparison to be meaningful", rep.NumCPU)
	}

	names := strings.Split(*exps, ",")
	rep.Sweep = runSweep(names, *tableMB, *parallel)
	rep.Serve = runServe(*model, *srvMB, *shards, *clients, *requests, *reqBatch)
	rep.Micro = runMicro()
	rep.Locality = runLocality(*locTableMB, *locCacheMB, *locInfer, *locBatch)
	rep.Obs = runObs(*model, *obsTableMB, *obsShards, *obsReqs, *reqBatch)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rmperf: wrote %s (sweep %.2fs -> %.2fs, %.2fx; serving %.0f req/s on %d shards)\n",
		*out, rep.Sweep.SequentialSeconds, rep.Sweep.ParallelSeconds, rep.Sweep.Speedup,
		rep.Serve.HostRequestsPerS, rep.Serve.Shards)
}

// renderSweep evaluates the named experiments and returns the wall-clock
// spent plus every rendered table, for the byte-identity check.
func renderSweep(names []string, opts bench.Options) (float64, []string, error) {
	var tables []string
	start := time.Now() //lint:allow wallclock host-side perf harness measures real elapsed time
	for _, name := range names {
		e, err := bench.Find(strings.TrimSpace(name))
		if err != nil {
			return 0, nil, err
		}
		for _, t := range e.Run(opts) {
			tables = append(tables, t.String())
		}
	}
	//lint:allow wallclock host-side perf harness measures real elapsed time
	return time.Since(start).Seconds(), tables, nil
}

// runSweep times the fixed sweep sequentially and in parallel and checks
// the outputs are byte-identical.
func runSweep(names []string, tableMB int64, parallel int) SweepReport {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	seqOpts := bench.Options{TableBytes: tableMB << 20, Parallel: 1}
	parOpts := bench.Options{TableBytes: tableMB << 20, Parallel: parallel}

	seqSec, seqTabs, err := renderSweep(names, seqOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if runtime.NumCPU() == 1 {
		// One CPU: a worker pool can only lose to the sequential loop, so
		// the comparison would measure goroutine overhead, not speedup.
		return SweepReport{
			Experiments:       names,
			TableMB:           tableMB,
			Parallel:          parallel,
			SequentialSeconds: seqSec,
			Status:            "skipped_overhead_bound",
		}
	}
	parSec, parTabs, err := renderSweep(names, parOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	identical := len(seqTabs) == len(parTabs)
	if identical {
		for i := range seqTabs {
			if seqTabs[i] != parTabs[i] {
				identical = false
				break
			}
		}
	}
	rep := SweepReport{
		Experiments:       names,
		TableMB:           tableMB,
		Parallel:          parallel,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
		ByteIdentical:     identical,
		Status:            "ok",
	}
	if parSec > 0 {
		rep.Speedup = seqSec / parSec
	}
	return rep
}

// perfShard is one serving backend: an independent device replica with its
// own virtual clock and trace stream. The pool calls ServeBatch from a
// single goroutine per shard, so no locking is needed.
type perfShard struct {
	dev *rmssd.Device
	gen *rmssd.TraceGenerator
	cfg rmssd.ModelConfig
	now time.Duration
	seq int
}

// ServeBatch implements serving.Batcher: the perf harness only submits
// count-only requests, so inputs come from the shard's generator stream;
// explicit payloads are concatenated as-is.
func (s *perfShard) ServeBatch(reqs []serving.Request) serving.BatchResult {
	n := serving.CountOf(reqs)
	denses := make([]rmssd.Vector, 0, n)
	sparses := make([][][]int64, 0, n)
	for _, req := range reqs {
		if req.Explicit() {
			for i, sp := range req.Sparse {
				sparses = append(sparses, sp)
				if req.Dense != nil {
					denses = append(denses, req.Dense[i])
				} else {
					denses = append(denses, make(rmssd.Vector, s.cfg.DenseDim))
				}
			}
			continue
		}
		for i := 0; i < req.N; i++ {
			denses = append(denses, s.gen.DenseInput(s.seq+i, s.cfg.DenseDim))
		}
		sparses = append(sparses, s.gen.Batch(req.N)...)
		s.seq += req.N
	}
	outs, done, _, err := s.dev.InferBatch(s.now, denses, sparses)
	lat := done - s.now
	s.now = done
	return serving.BatchResult{Preds: outs, Latency: lat, Err: err}
}

// runServe builds the sharded pool and measures host-side throughput under
// concurrent clients.
func runServe(modelName string, tableMB int64, nshards, clients, requests, reqBatch int) ServeReport {
	cfg, err := rmssd.ModelByName(modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.RowsPerTable = cfg.RowsForBudget(tableMB << 20)
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	devParallel := 1
	if nshards == 1 {
		devParallel = 0 // channel-parallel lanes inside the single device
	}
	var first *rmssd.Device
	backends := make([]serving.Batcher, 0, nshards)
	for i := 0; i < nshards; i++ {
		dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{Parallel: devParallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if first == nil {
			first = dev
		}
		backends = append(backends, &perfShard{
			dev: dev, cfg: cfg,
			gen: rmssd.MustNewTrace(rmssd.TraceConfig{
				Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups,
				Seed: 1 + uint64(i)*0x9e37,
			}),
		})
	}
	pool := serving.NewPool(backends, first.NBatch(), 256)

	start := time.Now() //lint:allow wallclock host-side perf harness measures real elapsed time
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := c; r < requests; r += clients {
				if _, err := pool.Infer(reqBatch); err != nil {
					panic(err) // unreachable: reqBatch > 0
				}
			}
		}(c)
	}
	wg.Wait()
	//lint:allow wallclock host-side perf harness measures real elapsed time
	wall := time.Since(start).Seconds()
	pool.Close()

	st := pool.Stats()
	perShardQPS := first.SteadyStateQPS(first.NBatch())
	rep := ServeReport{
		Model:             cfg.Name,
		TableMB:           tableMB,
		Shards:            nshards,
		Clients:           clients,
		Requests:          st.Requests,
		Inferences:        st.Inferences,
		MeanBatch:         st.MeanBatch,
		WallSeconds:       wall,
		SimulatedAggQPS:   perShardQPS * float64(nshards),
		SimulatedShardQPS: perShardQPS,
	}
	if wall > 0 {
		rep.HostRequestsPerS = float64(st.Requests) / wall
		rep.HostInferPerS = float64(st.Inferences) / wall
	}
	return rep
}
