package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"rmssd"
	"rmssd/internal/obs"
	"rmssd/internal/serving"
)

// Observability measurement: the same deterministic replay is run
// untraced, then traced twice. The report records (a) the host-side cost
// of tracing (wall-clock delta against the untraced run), (b) whether
// two traced reruns emit byte-identical JSONL and Prometheus text (the
// determinism contract), (c) whether tracing perturbed the replayed
// numbers (pred check must match the untraced run), and (d) a digest of
// the registry the tracer fed — rmperf is itself a consumer of the
// metrics surface, so a schema drift shows up here as well as in the
// conformance golden.

// ObsReport records the tracing overhead and determinism measurement.
type ObsReport struct {
	Model    string `json:"model"`
	TableMB  int64  `json:"table_mb"`
	Shards   int    `json:"shards"`
	Requests int    `json:"requests"`

	UntracedSeconds float64 `json:"untraced_seconds"`
	TracedSeconds   float64 `json:"traced_seconds"`
	OverheadPercent float64 `json:"tracing_overhead_percent"`

	BatchRecords    int64 `json:"batch_records"`
	TraceBytes      int   `json:"trace_bytes"`
	RerunIdentical  bool  `json:"trace_rerun_byte_identical"`
	ResultUnchanged bool  `json:"traced_result_byte_identical"`

	LatencyHistCount  int64   `json:"latency_histogram_count"`
	LatencySumSeconds float64 `json:"latency_histogram_sum_seconds"`
	EmbSharePercent   float64 `json:"emb_stage_share_percent"`
}

// obsReplay runs one replay over freshly built shards, optionally traced,
// and returns the result plus the wall-clock spent inside Replay.
func obsReplay(cfg rmssd.ModelConfig, nshards, requests, reqBatch int, tr *obs.Tracer) (serving.ReplayResult, float64) {
	backends := make([]serving.Batcher, 0, nshards)
	for i := 0; i < nshards; i++ {
		dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{Parallel: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if tr != nil {
			dev.SetSpanSink(tr.DeviceSink("default", i))
		}
		backends = append(backends, &perfShard{
			dev: dev, cfg: cfg,
			gen: rmssd.MustNewTrace(rmssd.TraceConfig{
				Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups,
				Seed: 1 + uint64(i)*0x9e37,
			}),
		})
	}
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 5,
	})
	src, err := serving.NewGeneratorSource(gen, reqBatch, cfg.DenseDim)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now() //lint:allow wallclock host-side perf harness measures real elapsed time
	res, err := serving.Replay(backends, serving.ReplayConfig{
		Rate: 100000, MaxBatch: 8, Requests: requests, Seed: 5, Tracer: tr,
	}, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	//lint:allow wallclock host-side perf harness measures real elapsed time
	return res, time.Since(start).Seconds()
}

// obsArtifact renders a tracer's full deterministic output: the JSONL
// trace followed by the Prometheus text of its registry.
func obsArtifact(tr *obs.Tracer) string {
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sb.WriteString(tr.Registry().RenderPrometheus())
	return sb.String()
}

// runObs measures tracing overhead and checks trace determinism.
func runObs(modelName string, tableMB int64, nshards, requests, reqBatch int) ObsReport {
	cfg, err := rmssd.ModelByName(modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.RowsPerTable = cfg.RowsForBudget(tableMB << 20)
	if nshards <= 0 {
		nshards = 2
	}

	plainRes, plainSec := obsReplay(cfg, nshards, requests, reqBatch, nil)

	t1 := obs.NewTracer(obs.NewRegistry())
	res1, tracedSec := obsReplay(cfg, nshards, requests, reqBatch, t1)
	t2 := obs.NewTracer(obs.NewRegistry())
	res2, _ := obsReplay(cfg, nshards, requests, reqBatch, t2)

	art1, art2 := obsArtifact(t1), obsArtifact(t2)

	bd := t1.Breakdown("default")
	busy := bd.Send + bd.Emb + bd.Bot + bd.Top + bd.Read
	hist := t1.Registry().Histogram("rmssd_request_sim_latency_seconds", obs.L("model", "default"))

	rep := ObsReport{
		Model:    cfg.Name,
		TableMB:  tableMB,
		Shards:   nshards,
		Requests: requests,

		UntracedSeconds: plainSec,
		TracedSeconds:   tracedSec,

		BatchRecords:   bd.Batches,
		TraceBytes:     len(art1),
		RerunIdentical: art1 == art2 && res1.PredCheck == res2.PredCheck,
		ResultUnchanged: res1.PredCheck == plainRes.PredCheck &&
			res1.Elapsed == plainRes.Elapsed && res1.P99 == plainRes.P99,

		LatencyHistCount:  hist.Count(),
		LatencySumSeconds: hist.Sum().Seconds(),
	}
	if plainSec > 0 {
		rep.OverheadPercent = 100 * (tracedSec - plainSec) / plainSec
	}
	if busy > 0 {
		rep.EmbSharePercent = 100 * float64(bd.Emb) / float64(busy)
	}
	return rep
}
