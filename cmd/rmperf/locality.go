package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"rmssd"
)

// Locality comparison: the same K=2 hot trace (Fig. 14's least-local
// preset, 30 % hot mass) is replayed through two identically configured
// devices — one with the EV cache and intra-batch dedup enabled, one plain —
// and the simulated aggregate throughput of each is recorded. Predictions
// must be byte-identical: the locality path only removes redundant fetches,
// never changes values.

// LocalityReport records the cache+dedup vs. plain comparison.
type LocalityReport struct {
	Model         string  `json:"model"`
	TableMB       int64   `json:"table_mb"`
	LocalityK     float64 `json:"locality_k"`
	Inferences    int     `json:"inferences"`
	EVCacheMB     int64   `json:"ev_cache_mb"`
	Lookups       int64   `json:"lookups"`
	DedupHits     int64   `json:"dedup_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	PlainSimQPS   float64 `json:"plain_sim_qps"`
	CachedSimQPS  float64 `json:"cached_sim_qps"`
	SimSpeedup    float64 `json:"sim_speedup"`
	ByteIdentical bool    `json:"predictions_byte_identical"`
}

// runLocality builds the two devices, replays the shared hot trace and
// compares.
func runLocality(tableMB, cacheMB int64, inferences, batch int) LocalityReport {
	cfg := rmssd.RMC1() // embedding-dominated: the lookup stage is the bottleneck
	cfg.RowsPerTable = cfg.RowsForBudget(tableMB << 20)

	plain, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{Parallel: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cached, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{
		Parallel:     1,
		EVCacheBytes: cacheMB << 20,
		DedupLookups: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tc, err := rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 5,
	}.WithLocality(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := rmssd.MustNewTrace(tc)
	sparses := gen.Batch(inferences)
	denses := make([]rmssd.Vector, inferences)
	for i := range denses {
		denses[i] = gen.DenseInput(i, cfg.DenseDim)
	}

	run := func(dev *rmssd.Device) ([]float32, float64) {
		preds := make([]float32, 0, inferences)
		var now time.Duration // simulated clock
		for off := 0; off < len(sparses); off += batch {
			end := off + batch
			if end > len(sparses) {
				end = len(sparses)
			}
			outs, done, _, err := dev.InferBatch(now, denses[off:end], sparses[off:end])
			if err != nil {
				// Generator inputs on an unfaulted device cannot error.
				panic(fmt.Sprintf("rmperf: %v", err))
			}
			preds = append(preds, outs...)
			now = done
		}
		var qps float64
		if now > 0 {
			qps = float64(len(sparses)) / now.Seconds()
		}
		return preds, qps
	}

	plainPreds, plainQPS := run(plain)
	cachedPreds, cachedQPS := run(cached)

	identical := len(plainPreds) == len(cachedPreds)
	if identical {
		for i := range plainPreds {
			if math.Float32bits(plainPreds[i]) != math.Float32bits(cachedPreds[i]) {
				identical = false
				break
			}
		}
	}

	rep := LocalityReport{
		Model:         cfg.Name,
		TableMB:       tableMB,
		LocalityK:     2,
		Inferences:    inferences,
		EVCacheMB:     cacheMB,
		Lookups:       cached.Lookup().Stats().Lookups,
		DedupHits:     cached.Lookup().Stats().DedupHits,
		PlainSimQPS:   plainQPS,
		CachedSimQPS:  cachedQPS,
		ByteIdentical: identical,
	}
	if c := cached.Lookup().EVCache(); c != nil {
		rep.CacheHitRatio = c.HitRatio()
	}
	if plainQPS > 0 {
		rep.SimSpeedup = cachedQPS / plainQPS
	}
	return rep
}
