package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rmssd"
	"rmssd/internal/evcache"
	"rmssd/internal/serving"
)

// Micro-benchmarks: per-operation allocation and latency numbers for the
// serving and lookup hot paths, measured in-process via testing.Benchmark so
// rmperf needs no `go test` invocation. Each stat is recorded next to a
// frozen baseline: the same benchmark's numbers at the commit before the
// allocation-lean rework, so BENCH_simcore.json shows the delta without
// having to rebuild history.

// Frozen per-op baselines (see note above). The EV cache is new in the same
// change, so it has no pre-rework baseline.
const (
	baseSubmitAllocs = 5
	baseSubmitBytes  = 288
	baseLookupAllocs = 1369
	baseLookupBytes  = 165696
)

// MicroStat is one benchmark's per-op numbers next to its frozen baseline.
type MicroStat struct {
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	BaselineAllocs int64   `json:"baseline_allocs_per_op,omitempty"`
	BaselineBytes  int64   `json:"baseline_bytes_per_op,omitempty"`
}

// MicroReport aggregates the micro-benchmarks plus the GC pause accumulated
// while they ran (host wall-clock figures; simulated time is not involved).
type MicroReport struct {
	PoolSubmit    MicroStat `json:"pool_submit"`
	LookupPoolHot MicroStat `json:"lookup_pool_hot"`
	EVCacheHit    MicroStat `json:"evcache_hit"`
	GCPauseMS     float64   `json:"gc_pause_total_ms"`
}

func stat(r testing.BenchmarkResult, baseAllocs, baseBytes int64) MicroStat {
	return MicroStat{
		NsPerOp:        float64(r.NsPerOp()),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
		BaselineAllocs: baseAllocs,
		BaselineBytes:  baseBytes,
	}
}

// nullBatcher isolates Pool.Submit's own cost: serving a batch is one slice
// allocation and no simulation.
type nullBatcher struct{}

func (nullBatcher) ServeBatch(reqs []serving.Request) serving.BatchResult {
	return serving.BatchResult{Preds: make([]float32, serving.CountOf(reqs))}
}

// runMicro measures the three hot paths. The lookup benchmark mirrors
// internal/engine's BenchmarkLookupPoolHotTrace (same model shape, geometry,
// trace seed and K=2 locality) so its numbers are comparable with `make
// bench-micro` output and with the frozen baselines.
func runMicro() MicroReport {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	pool := serving.NewPool([]serving.Batcher{nullBatcher{}}, 8, 64)
	submit := testing.Benchmark(func(b *testing.B) {
		ctx := context.Background()
		req := serving.Request{N: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Submit(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	pool.Close()

	cfg := rmssd.RMC1()
	cfg.RowsPerTable = 2048
	dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{
		Geometry: rmssd.Geometry{
			Channels: 4, DiesPerChannel: 4, PlanesPerDie: 2,
			BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 4096,
		},
		Parallel: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tc, err := rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 7,
	}.WithLocality(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := rmssd.MustNewTrace(tc)
	batches := gen.Batch(64)
	lookup := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := dev.Lookup().Pool(0, batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	evSize := cfg.EVSize()
	cache := evcache.New(int64(evSize)*1024, evSize)
	vec := make([]byte, evSize)
	cache.Reserve(0, 1).Fill(vec)
	hit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entry, ok := cache.Get(0, 1)
			if !ok || !entry.Filled() {
				b.Fatal("vector fell out of a one-entry working set")
			}
			cache.Hit(0)
		}
	})

	runtime.ReadMemStats(&after)
	return MicroReport{
		PoolSubmit:    stat(submit, baseSubmitAllocs, baseSubmitBytes),
		LookupPoolHot: stat(lookup, baseLookupAllocs, baseLookupBytes),
		EVCacheHit:    stat(hit, 0, 0),
		GCPauseMS:     float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
	}
}
