package main

import (
	"fmt"
	"rmssd/internal/core"
	"rmssd/internal/engine"
	"rmssd/internal/model"
)

func main() {
	cfg, _ := model.ConfigByName("WnD")
	cfg.RowsPerTable = cfg.RowsForBudget(64 << 20)
	r := core.MustNew(cfg, core.Options{Design: engine.DesignSearched})
	fmt.Println("NBatch", r.NBatch())
	for _, s := range r.StageTimes(r.NBatch()) {
		fmt.Println(s.Name, s.Time)
	}
	for _, k := range r.MLP().Kernels() {
		fmt.Printf("%s %dx%d dram=%v cyc=%d\n", k.Layer, k.Kr, k.Kc, k.InDRAM, k.Cycles)
	}
	fmt.Println("QPS", r.SteadyStateQPS(r.NBatch()))
}
