// Command rmreplay streams a recommendation trace at a running rmserve
// instance over HTTP and reports end-to-end serving statistics: simulated
// and wall-clock latency percentiles, coalescing behaviour and per-shard
// balance. It is the client half of trace-driven serving — the server never
// invents an input; every index the device serves arrives in a request
// body, like the paper's RM_send_inputs path.
//
//	rmserve -model RMC1 -table-mb 64 -shards 4 &
//	rmtrace -criteo-out trace.tsv -inferences 20000
//	rmreplay -addr http://127.0.0.1:8080 -criteo-in trace.tsv -requests 1000 -concurrency 8
//
// Without -criteo-in, rmreplay synthesises requests from the paper's
// locality model (the same generator rmserve uses for count-only requests).
//
// Against a multi-model server (rmserve -models config.json), -model NAME
// addresses one hosted model: the client fetches that model's shape from
// /models and tags every request body with the model name.
//
// Wall-clock numbers measure the host HTTP path and vary run to run; the
// simulated numbers come from the device model. For a fully deterministic
// in-process replay, use `rmserve -trace` instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"rmssd"
	"rmssd/internal/obs"
)

// info mirrors the fields of rmserve's /info and /models responses the
// client needs. Name is the serving name (multi-model servers), Model the
// underlying architecture.
type info struct {
	Name         string `json:"name"`
	Model        string `json:"model"`
	Tables       int    `json:"tables"`
	Lookups      int    `json:"lookups"`
	RowsPerTable int64  `json:"rowsPerTable"`
	DenseDim     int    `json:"denseDim"`
	DeviceBatch  int    `json:"deviceBatch"`
	Shards       int    `json:"shards"`
}

// inferBody is the explicit-payload /infer request body. Model addresses a
// hosted model on a multi-model server; empty means the server's default.
type inferBody struct {
	Model  string         `json:"model,omitempty"`
	Sparse [][][]int64    `json:"sparse"`
	Dense  []rmssd.Vector `json:"dense,omitempty"`
}

// inferReply is the subset of the /infer response the client reads.
type inferReply struct {
	Predictions       []float32 `json:"predictions"`
	SimulatedLatency  string    `json:"simulatedLatency"`
	Shard             int       `json:"shard"`
	CoalescedBatch    int       `json:"coalescedBatch"`
	CoalescedRequests int       `json:"coalescedRequests"`
	Error             string    `json:"error"`
}

// sample is one request's measured outcome.
type sample struct {
	sim       time.Duration // server-simulated latency
	wall      time.Duration // host round-trip time
	shard     int
	coalesced int // requests on the same device batch
	preds     int
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "rmserve base URL")
		criteoIn    = flag.String("criteo-in", "", "Criteo-format TSV trace (default: synthetic)")
		requests    = flag.Int("requests", 500, "requests to send (criteo stops early at EOF)")
		reqBatch    = flag.Int("req-batch", 1, "inferences per request")
		rate        = flag.Float64("rate", 0, "open-loop send rate in requests/second (0 = closed loop)")
		concurrency = flag.Int("concurrency", 4, "in-flight request cap")
		seed        = flag.Uint64("seed", 1, "synthetic trace seed")
		model       = flag.String("model", "", "hosted model to address on a multi-model server (default: server's default)")
		metricsOn   = flag.Bool("metrics", false, "after the report, fetch and print the server's /metrics exposition (server must run with -metrics)")
	)
	flag.Parse()
	if err := run(*addr, *model, *criteoIn, *requests, *reqBatch, *rate, *concurrency, *seed, *metricsOn, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmreplay:", err)
		os.Exit(1)
	}
}

func run(addr, model, criteoIn string, requests, reqBatch int, rate float64, concurrency int, seed uint64, metricsOn bool, w io.Writer) error {
	if requests <= 0 || reqBatch <= 0 || concurrency <= 0 {
		return fmt.Errorf("need positive -requests, -req-batch and -concurrency")
	}
	inf, err := fetchInfo(addr, model)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "target: %s model=%s shards=%d device-batch=%d (%d tables x %d lookups, %d rows/table)\n",
		addr, inf.Model, inf.Shards, inf.DeviceBatch, inf.Tables, inf.Lookups, inf.RowsPerTable); err != nil {
		return err
	}

	src, closer, err := newSource(criteoIn, inf, reqBatch, seed)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}

	// Draw the whole request stream up front so the send loop measures the
	// HTTP path, not TSV parsing.
	bodies := make([][]byte, 0, requests)
	for len(bodies) < requests {
		req, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("trace source: %w", err)
		}
		b, err := json.Marshal(inferBody{Model: model, Sparse: req.Sparse, Dense: req.Dense})
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
	}
	if len(bodies) == 0 {
		return fmt.Errorf("trace yielded no requests")
	}

	samples := make([]sample, len(bodies))
	errs := make(chan error, len(bodies))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, err := send(addr, bodies[i])
				if err != nil {
					errs <- fmt.Errorf("request %d: %w", i, err)
					continue
				}
				samples[i] = s
			}
		}()
	}
	//lint:allow wallclock host-side load client measures real elapsed time
	start := time.Now()
	for i := range bodies {
		if rate > 0 {
			// Open loop: request i is due at start + i/rate.
			due := start.Add(time.Duration(float64(i) / rate * 1e9))
			//lint:allow wallclock host-side load client paces real sends
			if d := time.Until(due); d > 0 {
				//lint:allow wallclock host-side load client paces real sends
				time.Sleep(d)
			}
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	//lint:allow wallclock host-side load client measures real elapsed time
	elapsed := time.Since(start)
	close(errs)
	nerr := 0
	var firstErrs []string
	for err := range errs {
		nerr++
		if nerr <= 5 {
			firstErrs = append(firstErrs, err.Error())
		}
	}
	if nerr > 0 {
		return fmt.Errorf("%d of %d requests failed; first errors:\n  %s",
			nerr, len(bodies), strings.Join(firstErrs, "\n  "))
	}

	out := report(samples, inf.Shards, elapsed) + fetchStats(addr)
	if metricsOn {
		out += fetchMetrics(addr)
	}
	_, err = io.WriteString(w, out)
	return err
}

// newSource picks the trace source: a Criteo TSV or the synthetic locality
// model matched to the server's shape.
func newSource(criteoIn string, inf info, reqBatch int, seed uint64) (rmssd.RequestSource, io.Closer, error) {
	if criteoIn != "" {
		f, err := os.Open(criteoIn)
		if err != nil {
			return nil, nil, err
		}
		p, err := rmssd.NewCriteoParser(f, inf.RowsPerTable)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the parse error is what matters
			f.Close()
			return nil, nil, err
		}
		src, err := rmssd.NewCriteoSource(p, inf.Tables, inf.Lookups, inf.DenseDim, reqBatch)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the source error is what matters
			f.Close()
			return nil, nil, err
		}
		return src, f, nil
	}
	gen, err := rmssd.NewTrace(rmssd.TraceConfig{
		Tables: inf.Tables, Rows: inf.RowsPerTable, Lookups: inf.Lookups, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	src, err := rmssd.NewGeneratorSource(gen, reqBatch, inf.DenseDim)
	return src, nil, err
}

// fetchInfo resolves the target model's shape: the server's default model
// via /info, or — when -model names a hosted model — its /models entry.
func fetchInfo(addr, model string) (info, error) {
	if model == "" {
		resp, err := http.Get(addr + "/info")
		if err != nil {
			return info{}, err
		}
		defer resp.Body.Close()
		var inf info
		if err := json.NewDecoder(resp.Body).Decode(&inf); err != nil {
			return info{}, fmt.Errorf("/info: %w", err)
		}
		return checkInfo(inf)
	}
	resp, err := http.Get(addr + "/models")
	if err != nil {
		return info{}, err
	}
	defer resp.Body.Close()
	var body struct {
		Models []info `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return info{}, fmt.Errorf("/models: %w", err)
	}
	for _, inf := range body.Models {
		if inf.Name == model {
			return checkInfo(inf)
		}
	}
	names := make([]string, len(body.Models))
	for i, inf := range body.Models {
		names[i] = inf.Name
	}
	return info{}, fmt.Errorf("server does not host model %q (hosts: %s)", model, strings.Join(names, ", "))
}

// checkInfo rejects shapes the trace sources cannot feed.
func checkInfo(inf info) (info, error) {
	if inf.Tables <= 0 || inf.Lookups <= 0 || inf.RowsPerTable <= 0 || inf.DenseDim <= 0 {
		return info{}, fmt.Errorf("server reported an unusable shape: %+v", inf)
	}
	return inf, nil
}

// send posts one request body and measures the round trip.
func send(addr string, body []byte) (sample, error) {
	//lint:allow wallclock host-side load client measures round-trip time
	t0 := time.Now()
	resp, err := http.Post(addr+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{}, err
	}
	defer resp.Body.Close()
	var rep inferReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return sample{}, fmt.Errorf("decode: %w", err)
	}
	//lint:allow wallclock host-side load client measures round-trip time
	wall := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		return sample{}, fmt.Errorf("status %d: %s", resp.StatusCode, rep.Error)
	}
	sim, err := time.ParseDuration(rep.SimulatedLatency)
	if err != nil {
		return sample{}, fmt.Errorf("simulatedLatency %q: %w", rep.SimulatedLatency, err)
	}
	return sample{sim: sim, wall: wall, shard: rep.Shard,
		coalesced: rep.CoalescedRequests, preds: len(rep.Predictions)}, nil
}

// report renders percentile and balance statistics over the samples.
func report(samples []sample, shards int, elapsed time.Duration) string {
	sims := make([]time.Duration, len(samples))
	walls := make([]time.Duration, len(samples))
	perShard := make([]int, shards)
	var coalescedSum, preds int
	for i, s := range samples {
		sims[i], walls[i] = s.sim, s.wall
		if s.shard >= 0 && s.shard < shards {
			perShard[s.shard]++
		}
		coalescedSum += s.coalesced
		preds += s.preds
	}
	p50s, p95s, p99s, maxs := quantiles(sims)
	p50w, p95w, p99w, maxw := quantiles(walls)
	var sb strings.Builder
	fmt.Fprintf(&sb, "served:       %d requests, %d predictions in %v wall (%.0f req/s)\n",
		len(samples), preds, elapsed.Round(time.Millisecond),
		float64(len(samples))/elapsed.Seconds())
	fmt.Fprintf(&sb, "sim latency:  p50=%v p95=%v p99=%v max=%v\n", p50s, p95s, p99s, maxs)
	fmt.Fprintf(&sb, "wall latency: p50=%v p95=%v p99=%v max=%v\n",
		p50w.Round(time.Microsecond), p95w.Round(time.Microsecond),
		p99w.Round(time.Microsecond), maxw.Round(time.Microsecond))
	fmt.Fprintf(&sb, "coalescing:   %.2f requests/batch (client-observed mean)\n",
		float64(coalescedSum)/float64(len(samples)))
	fmt.Fprintf(&sb, "per shard:    ")
	for i, n := range perShard {
		if i > 0 {
			fmt.Fprint(&sb, " ")
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	fmt.Fprintf(&sb, " (requests)\n")
	return sb.String()
}

// fetchStats renders the server's own aggregate view, best-effort: an
// unreachable or unparseable /stats yields an empty string.
func fetchStats(addr string) string {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var st struct {
		Inferences    float64 `json:"inferences"`
		Requests      float64 `json:"requests"`
		DeviceBatches float64 `json:"deviceBatches"`
		MeanBatch     float64 `json:"meanBatch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ""
	}
	return fmt.Sprintf("server:       %.0f requests, %.0f inferences, %.0f device batches (%.2f inferences/batch)\n",
		st.Requests, st.Inferences, st.DeviceBatches, st.MeanBatch)
}

// fetchMetrics pulls the server's Prometheus exposition, best-effort: an
// unreachable endpoint yields an empty string, a non-200 (rmserve without
// -metrics answers 404) a one-line note.
func fetchMetrics(addr string) string {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ""
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("metrics:      unavailable (%s)\n", strings.TrimSpace(string(body)))
	}
	return "-- /metrics --\n" + string(body)
}

// quantiles delegates to the repo's single quantile implementation so the
// client report and every server-side report agree on the convention.
func quantiles(lat []time.Duration) (p50, p95, p99, max time.Duration) {
	return obs.Quantiles(lat)
}
