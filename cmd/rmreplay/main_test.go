package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// stubServer mimics the slice of rmserve's API rmreplay consumes: /info
// (default model), /models (hosted models), /infer (echoes a fixed reply
// while recording which model each body addressed) and /stats.
func stubServer(t *testing.T) (*httptest.Server, *sync.Map) {
	t.Helper()
	var seen sync.Map // model name -> request count (int)
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Errorf("encode: %v", err)
		}
	}
	def := map[string]interface{}{
		"name": "ctr", "model": "RMC1", "tables": 2, "lookups": 3,
		"rowsPerTable": 64, "denseDim": 4, "deviceBatch": 8, "shards": 2,
	}
	wide := map[string]interface{}{
		"name": "wide", "model": "WnD", "tables": 3, "lookups": 1,
		"rowsPerTable": 32, "denseDim": 2, "deviceBatch": 4, "shards": 1,
	}
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, def)
	})
	mux.HandleFunc("/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{"models": []interface{}{def, wide}})
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		var body inferBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			writeJSON(w, map[string]string{"error": err.Error()})
			return
		}
		n, _ := seen.LoadOrStore(body.Model, new(int))
		cnt := n.(*int)
		// The test server is single-threaded per count via this mutex-free
		// pattern only because rmreplay runs make one concurrency lane.
		*cnt++
		writeJSON(w, map[string]interface{}{
			"predictions":       make([]float32, len(body.Sparse)),
			"simulatedLatency":  "10µs",
			"shard":             0,
			"coalescedBatch":    len(body.Sparse),
			"coalescedRequests": 1,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{
			"requests": 1, "inferences": 1, "deviceBatches": 1, "meanBatch": 1.0,
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &seen
}

func TestRunDefaultModel(t *testing.T) {
	srv, seen := stubServer(t)
	var sb strings.Builder
	if err := run(srv.URL, "", "", 5, 1, 0, 1, 1, false, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"target:", "model=RMC1", "sim latency:", "wall latency:", "server:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Untagged bodies address the default model.
	n, ok := seen.Load("")
	if !ok || *n.(*int) != 5 {
		t.Fatalf("default-model requests not observed: %v", n)
	}
}

func TestRunNamedModel(t *testing.T) {
	srv, seen := stubServer(t)
	var sb strings.Builder
	if err := run(srv.URL, "wide", "", 4, 1, 0, 1, 1, false, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "model=WnD") {
		t.Fatalf("report does not describe the named model:\n%s", sb.String())
	}
	n, ok := seen.Load("wide")
	if !ok || *n.(*int) != 4 {
		t.Fatalf("tagged requests not observed: %v", n)
	}
	if _, ok := seen.Load(""); ok {
		t.Fatal("untagged request leaked in named-model mode")
	}
}

func TestRunUnknownModel(t *testing.T) {
	srv, _ := stubServer(t)
	err := run(srv.URL, "mystery", "", 1, 1, 0, 1, 1, false, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("http://127.0.0.1:0", "", "", 0, 1, 0, 1, 1, false, &strings.Builder{}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if err := run("http://127.0.0.1:0", "", "", 1, 0, 0, 1, 1, false, &strings.Builder{}); err == nil {
		t.Fatal("zero req-batch accepted")
	}
	if err := run("http://127.0.0.1:0", "", "", 1, 1, 0, 0, 1, false, &strings.Builder{}); err == nil {
		t.Fatal("zero concurrency accepted")
	}
}
