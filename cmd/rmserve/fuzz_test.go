package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"rmssd"
	"rmssd/internal/serving"
)

// fuzzOnce builds one small two-model server shared by every fuzz
// iteration: constructing devices per-input would dominate the run.
var (
	fuzzOnce   sync.Once
	fuzzServer *server
)

func fuzzSrv() *server {
	fuzzOnce.Do(func() {
		mk := func(name, arch string, shards, weight int) *hostedModel {
			cfg, err := rmssd.ModelByName(arch)
			if err != nil {
				panic(fmt.Sprintf("rmserve: fuzz server: %v", err))
			}
			cfg.RowsPerTable = cfg.RowsForBudget(8 << 20)
			m, err := newHostedModel(name, cfg, hostOptions{shards: shards, seed: 1, maxBatch: 4, queue: 16, weight: weight})
			if err != nil {
				panic(fmt.Sprintf("rmserve: fuzz server: %v", err))
			}
			return m
		}
		s, err := newServer([]*hostedModel{mk("ctr", "RMC1", 1, 2), mk("wide", "WnD", 1, 1)}, 0)
		if err != nil {
			panic(fmt.Sprintf("rmserve: fuzz server: %v", err))
		}
		fuzzServer = s
	})
	return fuzzServer
}

// fuzzValidBody marshals a well-formed explicit request for the "wide"
// model (26 tables x 1 lookup, 13 dense features) as a seed input.
func fuzzValidBody(f *testing.F) []byte {
	f.Helper()
	sparse := make([][]int64, 26)
	for t := range sparse {
		sparse[t] = []int64{int64(t)}
	}
	body, err := json.Marshal(inferRequest{
		Model:  "wide",
		Sparse: [][][]int64{sparse},
		Dense:  []rmssd.Vector{make(rmssd.Vector, 13)},
	})
	if err != nil {
		f.Fatal(err)
	}
	return body
}

// FuzzInferRequest drives the /infer body decoding and validation path
// (including the model-routing field) over arbitrary JSON. The contract:
// never panic, reject anything unservable with an error, and every request
// that passes is genuinely admissible — a positive in-bounds batch whose
// explicit payload matches the addressed model's shape exactly.
func FuzzInferRequest(f *testing.F) {
	f.Add([]byte(`{"batch":2}`))
	f.Add([]byte(`{"model":"wide","batch":1}`))
	f.Add([]byte(`{"model":"nope"}`))
	f.Add([]byte(`{"batch":-3}`))
	f.Add([]byte(`{"batch":100000}`))
	f.Add([]byte(`{"sparse":[[[0,1]]],"dense":[[0.5]]}`))
	f.Add([]byte(`{"dense":[[1,2,3]]}`))
	f.Add([]byte(`{"sparse":[[[-1]]],"model":"wide"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add(fuzzValidBody(f))
	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzSrv()
		var req inferRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return // malformed JSON: the handler 400s it
		}
		m, sreq, err := s.buildInferRequest(req)
		if err != nil {
			return // unservable: rejected with an error, as required
		}
		if m == nil {
			t.Fatal("accepted request resolved no model")
		}
		if req.Model != "" && m.name != req.Model {
			t.Fatalf("request for %q routed to %q", req.Model, m.name)
		}
		n := serving.CountOf([]serving.Request{sreq})
		if n <= 0 || n > maxInferBatch {
			t.Fatalf("accepted batch of %d inferences (max %d)", n, maxInferBatch)
		}
		if sreq.Explicit() {
			if err := validatePayload(m.cfg, sreq); err != nil {
				t.Fatalf("accepted payload fails the model's own shape check: %v", err)
			}
		}
	})
}
