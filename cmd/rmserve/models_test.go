package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rmssd"
	"rmssd/internal/serving"
)

// testMultiServer hosts two heterogeneous models: a sharded RMC1 replica
// ("ctr", weight 2) and a single-shard WnD replica ("wide"). The configs
// differ in every dimension the router must keep apart: table count,
// lookups, embedding width and dense width.
func testMultiServer(t *testing.T, budget int) *server {
	t.Helper()
	ctr := rmssd.RMC1()
	ctr.RowsPerTable = ctr.RowsForBudget(16 << 20)
	wide, err := rmssd.ModelByName("WnD")
	if err != nil {
		t.Fatal(err)
	}
	wide.RowsPerTable = wide.RowsForBudget(16 << 20)
	a, err := newHostedModel("ctr", ctr, hostOptions{shards: 2, seed: 1, maxBatch: 8, queue: 64, weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := newHostedModel("wide", wide, hostOptions{shards: 1, seed: 1, maxBatch: 8, queue: 64, weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer([]*hostedModel{a, b}, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	return s
}

func TestParseModelsConfig(t *testing.T) {
	mc, err := parseModelsConfig(strings.NewReader(`{"models": [
		{"name": "ctr", "model": "RMC1", "tableMB": 16, "shards": 2, "weight": 2},
		{"model": "WnD", "tableMB": 16}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Models) != 2 {
		t.Fatalf("models = %+v", mc.Models)
	}
	d := mc.Models[0]
	if d.Name != "ctr" || d.Model != "RMC1" || d.Shards != 2 || d.Weight != 2 || d.Queue != 256 {
		t.Fatalf("decl 0 = %+v", d)
	}
	// Defaults: name from architecture, shards 1, weight 1, tableMB kept.
	d = mc.Models[1]
	if d.Name != "WnD" || d.Shards != 1 || d.Weight != 1 || d.TableMB != 16 {
		t.Fatalf("decl 1 = %+v", d)
	}

	hosted, err := mc.build(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosted) != 2 || hosted[0].name != "ctr" || hosted[1].name != "WnD" {
		t.Fatalf("hosted = %v, %v", hosted[0].name, hosted[1].name)
	}
	if hosted[0].cfg.Tables != 8 || hosted[1].cfg.Tables != 26 {
		t.Fatalf("configs not heterogeneous: %d/%d tables",
			hosted[0].cfg.Tables, hosted[1].cfg.Tables)
	}
}

func TestParseModelsConfigRejects(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"empty", `{}`},
		{"no models", `{"models": []}`},
		{"missing architecture", `{"models": [{"name": "x"}]}`},
		{"duplicate name", `{"models": [{"model": "RMC1"}, {"model": "RMC1"}]}`},
		{"unknown field", `{"models": [{"model": "RMC1", "tableGB": 1}]}`},
		{"negative weight", `{"models": [{"model": "RMC1", "weight": -1}]}`},
		{"negative tableMB", `{"models": [{"model": "RMC1", "tableMB": -4}]}`},
		{"trailing garbage", `{"models": [{"model": "RMC1"}]} {"models": []}`},
		{"not json", `models: [RMC1]`},
	}
	for _, c := range cases {
		if _, err := parseModelsConfig(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Unknown architectures surface at build time.
	mc, err := parseModelsConfig(strings.NewReader(`{"models": [{"model": "RMC9"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.build(1); err == nil {
		t.Fatal("unknown architecture accepted at build")
	}
}

func TestHandleModels(t *testing.T) {
	s := testMultiServer(t, 0)
	// Route one request to each model so the counters move.
	for _, body := range []string{`{"model":"ctr","batch":2}`, `{"model":"wide","batch":1}`} {
		rec := httptest.NewRecorder()
		s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("infer %s: status %d: %s", body, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	s.handleModels(rec, httptest.NewRequest(http.MethodGet, "/models", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Models []struct {
			Name       string  `json:"name"`
			Model      string  `json:"model"`
			Tables     int     `json:"tables"`
			Shards     int     `json:"shards"`
			Weight     int     `json:"weight"`
			Submitted  int64   `json:"submitted"`
			Inferences int64   `json:"inferences"`
			MeanBatch  float64 `json:"meanBatch"`
			MeanSimLat string  `json:"meanSimLatency"`
		} `json:"models"`
		DefaultModel string `json:"defaultModel"`
		HostBudget   int    `json:"hostBudget"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Models) != 2 || body.DefaultModel != "ctr" || body.HostBudget != 0 {
		t.Fatalf("body = %+v", body)
	}
	ctr, wide := body.Models[0], body.Models[1]
	if ctr.Name != "ctr" || ctr.Model != "RMC1" || ctr.Tables != 8 || ctr.Shards != 2 || ctr.Weight != 2 {
		t.Fatalf("ctr = %+v", ctr)
	}
	if wide.Name != "wide" || wide.Model != "WnD" || wide.Tables != 26 {
		t.Fatalf("wide = %+v", wide)
	}
	if ctr.Submitted != 1 || wide.Submitted != 1 {
		t.Fatalf("submitted = %d/%d", ctr.Submitted, wide.Submitted)
	}
	if ctr.Inferences != 2 || wide.Inferences != 1 {
		t.Fatalf("inferences = %d/%d", ctr.Inferences, wide.Inferences)
	}
	if ctr.MeanSimLat == "0s" || wide.MeanSimLat == "0s" {
		t.Fatalf("no latency observed: %q/%q", ctr.MeanSimLat, wide.MeanSimLat)
	}
}

func TestInferRoutesByModel(t *testing.T) {
	s := testMultiServer(t, 0)

	// Unknown model: 404 before any pool work.
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer",
		strings.NewReader(`{"model":"mystery","batch":1}`)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", rec.Code)
	}

	// Explicit payload shaped for the *wide* model must be rejected when
	// routed (by default) to ctr, and accepted when addressed to wide.
	inf := make([][]int64, 26)
	for t := range inf {
		inf[t] = []int64{0}
	}
	payload, err := json.Marshal(map[string]interface{}{"sparse": [][][]int64{inf}})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(string(payload))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wide payload on ctr: status %d: %s", rec.Code, rec.Body.String())
	}
	tagged, err := json.Marshal(map[string]interface{}{"model": "wide", "sparse": [][][]int64{inf}})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(string(tagged))))
	if rec.Code != http.StatusOK {
		t.Fatalf("wide payload on wide: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Model       string    `json:"model"`
		Predictions []float32 `json:"predictions"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "wide" || len(resp.Predictions) != 1 {
		t.Fatalf("resp = %+v", resp)
	}

	// The wide inference must have landed on wide's devices, not ctr's.
	_, wideInf, _ := s.byName["wide"].shards[0].snapshot()
	if wideInf != 1 {
		t.Fatalf("wide device served %d inferences", wideInf)
	}

	// QPS is per model too.
	rec = httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=2&model=wide", nil))
	var qps struct {
		Model  string `json:"model"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&qps); err != nil {
		t.Fatal(err)
	}
	if qps.Model != "wide" || qps.Shards != 1 {
		t.Fatalf("qps = %+v", qps)
	}
	rec = httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?model=mystery", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown qps model: status %d", rec.Code)
	}
}

// TestMultiModelConcurrentClients hammers both models through the real mux
// with a shared host budget, racing against a registry close at the end.
// Run with -race: this is the concurrency acceptance test for the
// registry/router path in its HTTP embedding.
func TestMultiModelConcurrentClients(t *testing.T) {
	s := testMultiServer(t, 3)
	srv := httptest.NewServer(s.routes())
	defer srv.Close()

	const (
		clients   = 8
		perClient = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := [...]string{"ctr", "wide"}[c%2]
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/infer", "application/json",
					strings.NewReader(fmt.Sprintf(`{"model":%q,"batch":1}`, model)))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("model %s: status %d", model, resp.StatusCode)
				}
				//lint:allow errcheck response body already fully decoded; close error is immaterial
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Budgeted admission never leaks slots.
	if got := s.router.InFlight(); got != 0 {
		t.Fatalf("in flight after drain: %d", got)
	}
	// Every inference is accounted to the right model.
	var ctrInf, wideInf int64
	for _, sh := range s.byName["ctr"].shards {
		_, inf, _ := sh.snapshot()
		ctrInf += inf
	}
	for _, sh := range s.byName["wide"].shards {
		_, inf, _ := sh.snapshot()
		wideInf += inf
	}
	if want := int64(clients / 2 * perClient); ctrInf != want || wideInf != want {
		t.Fatalf("inferences ctr=%d wide=%d, want %d each", ctrInf, wideInf, want)
	}
}

// TestMultiReplaySynthetic: the mixed-trace replay is deterministic and
// each model's section is byte-identical to a solo replay of that model
// with the derived seed.
func TestMultiReplaySynthetic(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 90, ReqBatch: 1, Seed: 5}
	run := func() serving.MultiReplayResult {
		s := testMultiServer(t, 0)
		res, err := s.multiReplay(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi replay not deterministic:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a.Models, []string{"ctr", "wide"}) {
		t.Fatalf("models = %v", a.Models)
	}
	// Weight 2:1 interleave.
	if a.PerModel["ctr"].Requests != 60 || a.PerModel["wide"].Requests != 30 {
		t.Fatalf("per-model requests = %d/%d",
			a.PerModel["ctr"].Requests, a.PerModel["wide"].Requests)
	}

	// Solo identity: replay ctr alone (fresh single-model server of the
	// same config) over the same derived stream seed and request count.
	ctr := rmssd.RMC1()
	ctr.RowsPerTable = ctr.RowsForBudget(16 << 20)
	m, err := newHostedModel("ctr", ctr, hostOptions{shards: 2, seed: 1, maxBatch: 8, queue: 64, weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := newServer([]*hostedModel{m}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(solo.close)
	seed := serving.ModelReplaySeed(rc.Seed, "ctr")
	src, _, err := m.newSource(rc, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serving.Replay(m.backends(), serving.ReplayConfig{
		Rate: rc.Rate, MaxBatch: m.maxBatch, Requests: 60, Seed: seed,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PerModel["ctr"], want) {
		t.Fatalf("mixed != solo for ctr:\nmixed %+v\nsolo  %+v", a.PerModel["ctr"], want)
	}
}

// TestMultiReplayReport: the printed multi-model report carries the
// aggregate plus one section per model.
func TestMultiReplayReport(t *testing.T) {
	s := testMultiServer(t, 0)
	var sb strings.Builder
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 30, ReqBatch: 1, Seed: 3}
	if err := s.runReplay(rc, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"replay synthetic: 2 models", "aggregate:", "--- model ctr (RMC1",
		"--- model wide (WnD", "pred check:", "sim latency:", "wall clock:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
