package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rmssd"
	"rmssd/internal/serving"
)

// Trace replay mode: `rmserve -trace synthetic|criteo` drives the sharded
// pool open-loop from an externally supplied request stream instead of
// serving HTTP — the trace-driven analogue of RecSSD's evaluation, which
// replays measured Criteo access streams against the device. The arrival
// timeline is virtual and the source is deterministic, so the emitted
// report is byte-identical across runs with the same seed and shard count.

// replayConfig parameterises one replay run.
type replayConfig struct {
	Mode     string  // "synthetic" or "criteo"
	CriteoIn string  // TSV path for Mode == "criteo"
	Rate     float64 // requests per simulated second
	Requests int     // request bound (criteo additionally stops at EOF)
	ReqBatch int     // inferences per request
	Seed     uint64
}

// newSource builds the request source for the config. The returned closer
// is nil for sources without an underlying file.
func (s *server) newSource(rc replayConfig) (serving.RequestSource, io.Closer, error) {
	switch rc.Mode {
	case "synthetic":
		gen, err := rmssd.NewTrace(rmssd.TraceConfig{
			Tables: s.cfg.Tables, Rows: s.cfg.RowsPerTable, Lookups: s.cfg.Lookups,
			Seed: rc.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		src, err := serving.NewGeneratorSource(gen, rc.ReqBatch, s.cfg.DenseDim)
		return src, nil, err
	case "criteo":
		if rc.CriteoIn == "" {
			return nil, nil, fmt.Errorf("rmserve: -trace criteo needs -criteo-in")
		}
		f, err := os.Open(rc.CriteoIn)
		if err != nil {
			return nil, nil, err
		}
		p, err := rmssd.NewCriteoParser(f, s.cfg.RowsPerTable)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the parse error is what matters
			f.Close()
			return nil, nil, err
		}
		src, err := serving.NewCriteoSource(p, s.cfg.Tables, s.cfg.Lookups, s.cfg.DenseDim, rc.ReqBatch)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the source error is what matters
			f.Close()
			return nil, nil, err
		}
		return src, f, nil
	default:
		return nil, nil, fmt.Errorf("rmserve: unknown -trace mode %q (want synthetic or criteo)", rc.Mode)
	}
}

// replay drives the shards and returns the deterministic result. The pool's
// workers must be idle (no concurrent HTTP traffic): ServeBatch is invoked
// from this goroutine only.
func (s *server) replay(rc replayConfig) (serving.ReplayResult, error) {
	if rc.Mode == "synthetic" && rc.Requests <= 0 {
		return serving.ReplayResult{}, fmt.Errorf("rmserve: synthetic replay needs -requests > 0")
	}
	src, closer, err := s.newSource(rc)
	if err != nil {
		return serving.ReplayResult{}, err
	}
	if closer != nil {
		defer closer.Close()
	}
	backends := make([]serving.Batcher, len(s.shards))
	for i, sh := range s.shards {
		backends[i] = sh
	}
	maxBatch := s.pool.MaxBatch()
	return serving.Replay(backends, serving.ReplayConfig{
		Rate: rc.Rate, MaxBatch: maxBatch, Requests: rc.Requests, Seed: rc.Seed,
	}, src)
}

// runReplay runs the replay and prints the report.
func (s *server) runReplay(rc replayConfig, w io.Writer) error {
	//lint:allow wallclock host-side harness reports real elapsed time next to simulated results
	start := time.Now()
	res, err := s.replay(rc)
	if err != nil {
		return err
	}
	//lint:allow wallclock host-side harness reports real elapsed time next to simulated results
	wall := time.Since(start)

	// Build the report in memory, then flush once so a failed write on the
	// destination surfaces as the command's error.
	var sb strings.Builder
	fmt.Fprintf(&sb, "replay %s: model=%s shards=%d rate=%.0f req/s req-batch=%d seed=%d\n",
		rc.Mode, s.cfg.Name, len(s.shards), rc.Rate, rc.ReqBatch, rc.Seed)
	fmt.Fprintf(&sb, "served:       %d requests, %d inferences in %d device batches\n",
		res.Requests, res.Inferences, res.Batches)
	fmt.Fprintf(&sb, "coalescing:   %.2f inferences/batch, %.2f requests/batch\n",
		res.MeanBatch, res.Coalesced)
	fmt.Fprintf(&sb, "sim latency:  p50=%v p95=%v p99=%v max=%v\n",
		res.P50, res.P95, res.P99, res.Max)
	fmt.Fprintf(&sb, "sim elapsed:  %v (%.0f inf/s simulated)\n", res.Elapsed, res.ThroughputQPS)
	fmt.Fprintf(&sb, "pred check:   %016x\n", res.PredCheck)
	fmt.Fprintf(&sb, "per shard:    ")
	for i, n := range res.PerShard {
		if i > 0 {
			fmt.Fprint(&sb, " ")
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	fmt.Fprintf(&sb, " (inferences)\n")
	fmt.Fprintf(&sb, "wall clock:   %v host time\n", wall.Round(time.Millisecond))
	_, err = io.WriteString(w, sb.String())
	return err
}
