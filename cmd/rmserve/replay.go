package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rmssd"
	"rmssd/internal/obs"
	"rmssd/internal/serving"
)

// Trace replay mode: `rmserve -trace synthetic|criteo` drives the sharded
// pool(s) open-loop from an externally supplied request stream instead of
// serving HTTP — the trace-driven analogue of RecSSD's evaluation, which
// replays measured Criteo access streams against the device. The arrival
// timeline is virtual and the source is deterministic, so the emitted
// report is byte-identical across runs with the same seed and
// configuration.
//
// In multi-model mode the replayed stream is the weighted interleave of one
// per-model source (each model draws inputs shaped for its own tables), and
// the replay itself is a serving.MultiReplay: each model's subsequence runs
// on its own seeded virtual timeline, so the per-model numbers are
// byte-identical to replaying that model alone.

// replayConfig parameterises one replay run.
type replayConfig struct {
	Mode     string  // "synthetic" or "criteo"
	CriteoIn string  // TSV path for Mode == "criteo"
	Rate     float64 // requests per simulated second
	Requests int     // request bound (criteo additionally stops at EOF)
	ReqBatch int     // inferences per request
	Seed     uint64
	// Tracer, when non-nil, records sim-time batch spans during the replay;
	// the report then gains per-stage breakdown tables and TraceOut (when
	// set) receives the trace as JSONL. Tracing never changes the replayed
	// numbers (pinned by the differential tests).
	Tracer   *obs.Tracer
	TraceOut string
}

// newSource builds the model's request source for the config, drawing from
// the given stream seed. The returned closer is nil for sources without an
// underlying file.
func (m *hostedModel) newSource(rc replayConfig, seed uint64) (serving.RequestSource, io.Closer, error) {
	switch rc.Mode {
	case "synthetic":
		gen, err := rmssd.NewTrace(rmssd.TraceConfig{
			Tables: m.cfg.Tables, Rows: m.cfg.RowsPerTable, Lookups: m.cfg.Lookups,
			Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		src, err := serving.NewGeneratorSource(gen, rc.ReqBatch, m.cfg.DenseDim)
		return src, nil, err
	case "criteo":
		if rc.CriteoIn == "" {
			return nil, nil, fmt.Errorf("rmserve: -trace criteo needs -criteo-in")
		}
		f, err := os.Open(rc.CriteoIn)
		if err != nil {
			return nil, nil, err
		}
		p, err := rmssd.NewCriteoParser(f, m.cfg.RowsPerTable)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the parse error is what matters
			f.Close()
			return nil, nil, err
		}
		src, err := serving.NewCriteoSource(p, m.cfg.Tables, m.cfg.Lookups, m.cfg.DenseDim, rc.ReqBatch)
		if err != nil {
			//lint:allow errcheck read-only file on an error path; the source error is what matters
			f.Close()
			return nil, nil, err
		}
		return src, f, nil
	default:
		return nil, nil, fmt.Errorf("rmserve: unknown -trace mode %q (want synthetic or criteo)", rc.Mode)
	}
}

// replay drives the default model's shards and returns the deterministic
// result. The pool's workers must be idle (no concurrent HTTP traffic):
// ServeBatch is invoked from this goroutine only.
func (s *server) replay(rc replayConfig) (serving.ReplayResult, error) {
	if rc.Mode == "synthetic" && rc.Requests <= 0 {
		return serving.ReplayResult{}, fmt.Errorf("rmserve: synthetic replay needs -requests > 0")
	}
	m := s.def
	src, closer, err := m.newSource(rc, rc.Seed)
	if err != nil {
		return serving.ReplayResult{}, err
	}
	if closer != nil {
		defer closer.Close()
	}
	if rc.Tracer != nil {
		s.installReplaySinks(rc.Tracer)
	}
	return serving.Replay(m.backends(), serving.ReplayConfig{
		Rate: rc.Rate, MaxBatch: m.maxBatch, Requests: rc.Requests, Seed: rc.Seed,
		Tracer: rc.Tracer, TraceModel: m.name,
	}, src)
}

// multiReplay interleaves one source per hosted model by registration
// weight and replays the mixed stream through every model's own pool
// backends. Criteo mode opens the TSV once per model: each model maps the
// same record stream onto its own table geometry.
func (s *server) multiReplay(rc replayConfig) (serving.MultiReplayResult, error) {
	if rc.Mode == "synthetic" && rc.Requests <= 0 {
		return serving.MultiReplayResult{}, fmt.Errorf("rmserve: synthetic replay needs -requests > 0")
	}
	parts := make([]serving.TaggedPart, 0, len(s.models))
	models := make([]serving.ReplayModel, 0, len(s.models))
	for _, m := range s.models {
		// Each model draws its inputs from its own seeded stream; the seed
		// is derived exactly like the model's arrival seed so a solo rerun
		// can reproduce both the inputs and the timeline.
		src, closer, err := m.newSource(rc, serving.ModelReplaySeed(rc.Seed, m.name))
		if err != nil {
			return serving.MultiReplayResult{}, err
		}
		if closer != nil {
			defer closer.Close()
		}
		parts = append(parts, serving.TaggedPart{Model: m.name, Source: src, Weight: m.weight})
		models = append(models, serving.ReplayModel{Name: m.name, Backends: m.backends(), MaxBatch: m.maxBatch})
	}
	src, err := serving.NewInterleavedSource(parts)
	if err != nil {
		return serving.MultiReplayResult{}, err
	}
	if rc.Tracer != nil {
		s.installReplaySinks(rc.Tracer)
	}
	return serving.MultiReplay(models, serving.MultiReplayConfig{
		Rate: rc.Rate, Requests: rc.Requests, Seed: rc.Seed, Tracer: rc.Tracer,
	}, src)
}

// formatReplayResult renders one model's replay section.
func formatReplayResult(sb *strings.Builder, res serving.ReplayResult) {
	fmt.Fprintf(sb, "served:       %d requests, %d inferences in %d device batches\n",
		res.Requests, res.Inferences, res.Batches)
	fmt.Fprintf(sb, "coalescing:   %.2f inferences/batch, %.2f requests/batch\n",
		res.MeanBatch, res.Coalesced)
	fmt.Fprintf(sb, "sim latency:  p50=%v p95=%v p99=%v max=%v\n",
		res.P50, res.P95, res.P99, res.Max)
	fmt.Fprintf(sb, "sim elapsed:  %v (%.0f inf/s simulated)\n", res.Elapsed, res.ThroughputQPS)
	fmt.Fprintf(sb, "pred check:   %016x\n", res.PredCheck)
	fmt.Fprintf(sb, "per shard:    ")
	for i, n := range res.PerShard {
		if i > 0 {
			fmt.Fprint(sb, " ")
		}
		fmt.Fprintf(sb, "%d", n)
	}
	fmt.Fprintf(sb, " (inferences)\n")
}

// formatLocality appends the model's dedup/EV-cache counters when its
// locality path is on; the default configuration prints nothing, keeping
// classic replay reports byte-identical.
func formatLocality(sb *strings.Builder, m *hostedModel) {
	lk, ev, cached := m.localityStats()
	if !cached && !m.shards[0].members()[0].Lookup().Dedup() {
		return
	}
	fmt.Fprintf(sb, "locality:     %d/%d lookups deduped", lk.DedupHits, lk.Lookups)
	if cached {
		probes := ev.Hits + ev.Misses
		var ratio float64
		if probes > 0 {
			ratio = float64(ev.Hits) / float64(probes)
		}
		fmt.Fprintf(sb, "; cache %d/%d hits (%.1f%%), %d evictions",
			ev.Hits, probes, 100*ratio, ev.Evictions)
	}
	fmt.Fprintf(sb, "\n")
}

// formatArray appends the model's scatter/gather counters when its shards
// are backed by multi-device arrays. Array-free models print nothing,
// keeping classic replay reports byte-identical.
func formatArray(sb *strings.Builder, m *hostedModel) {
	st, ok := m.arrayStats()
	if !ok {
		return
	}
	fmt.Fprintf(sb, "array:        %d devices (%s); scattered", st.Devices, st.Partition)
	for _, n := range st.Scattered {
		fmt.Fprintf(sb, " %d", n)
	}
	fmt.Fprintf(sb, " lookups; %d partials in %d transfers (%d bytes)\n",
		st.Partials, st.Transfers, st.TransferBytes)
}

// formatFaults appends fault-injection counters when the model's devices
// have a fault plan enabled. With injection off (the default) nothing is
// printed, keeping faults-off replay reports byte-identical to historical
// output.
func formatFaults(sb *strings.Builder, m *hostedModel, res serving.ReplayResult) {
	if !m.shards[0].members()[0].Device().Array().FaultPlan().Enabled() {
		return
	}
	var readFaults, retries, uncorrectable int64
	for _, sh := range m.shards {
		fs, _, _ := sh.snapshot()
		readFaults += fs.ReadFaults
		retries += fs.ECCRetries
		uncorrectable += fs.Uncorrectable
	}
	fmt.Fprintf(sb, "faults:       %d read faults, %d ECC retries, %d uncorrectable; %d requests failed\n",
		readFaults, retries, uncorrectable, res.Failed)
}

// runReplay runs the replay and prints the report: the classic single-model
// report when one model is hosted, or one section per model plus the
// aggregate in multi-model mode.
func (s *server) runReplay(rc replayConfig, w io.Writer) error {
	//lint:allow wallclock host-side harness reports real elapsed time next to simulated results
	start := time.Now()

	// Build the report in memory, then flush once so a failed write on the
	// destination surfaces as the command's error.
	var sb strings.Builder
	if len(s.models) == 1 {
		res, err := s.replay(rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "replay %s: model=%s shards=%d rate=%.0f req/s req-batch=%d seed=%d\n",
			rc.Mode, s.def.cfg.Name, len(s.def.shards), rc.Rate, rc.ReqBatch, rc.Seed)
		formatReplayResult(&sb, res)
		formatLocality(&sb, s.def)
		formatArray(&sb, s.def)
		formatFaults(&sb, s.def, res)
		if rc.Tracer != nil {
			formatStages(&sb, rc.Tracer, s.def.name)
		}
	} else {
		res, err := s.multiReplay(rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "replay %s: %d models rate=%.0f req/s req-batch=%d seed=%d\n",
			rc.Mode, len(s.models), rc.Rate, rc.ReqBatch, rc.Seed)
		fmt.Fprintf(&sb, "aggregate:    %d requests, %d inferences in %d device batches\n",
			res.Requests, res.Inferences, res.Batches)
		for _, name := range res.Models {
			m := s.byName[name]
			fmt.Fprintf(&sb, "--- model %s (%s, %d shards, weight %d, seed %d)\n",
				name, m.cfg.Name, len(m.shards), m.weight, serving.ModelReplaySeed(rc.Seed, name))
			formatReplayResult(&sb, res.PerModel[name])
			formatLocality(&sb, m)
			formatArray(&sb, m)
			formatFaults(&sb, m, res.PerModel[name])
			if rc.Tracer != nil {
				formatStages(&sb, rc.Tracer, name)
			}
		}
	}
	if rc.Tracer != nil && rc.TraceOut != "" {
		if err := writeTraceFile(rc.Tracer, rc.TraceOut); err != nil {
			return err
		}
	}
	//lint:allow wallclock host-side harness reports real elapsed time next to simulated results
	wall := time.Since(start)
	fmt.Fprintf(&sb, "wall clock:   %v host time\n", wall.Round(time.Millisecond))
	_, err := io.WriteString(w, sb.String())
	return err
}
