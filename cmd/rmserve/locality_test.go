package main

import (
	"context"
	"math"
	"sync"
	"testing"

	"rmssd"
	"rmssd/internal/serving"
)

// TestCachedShardedPoolConcurrent drives a cache+dedup server from many
// goroutines at once and checks every response bit-for-bit against an
// uncached reference device. Predictions depend only on a request's own
// inputs — never on coalescing, shard assignment or cache state — so the
// equality must hold however the race resolves. Run under -race this also
// proves the per-shard caches are confined to their shard goroutines.
func TestCachedShardedPoolConcurrent(t *testing.T) {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(8 << 20)
	s, err := newSingleServer(cfg, hostOptions{
		shards: 2, seed: 1, maxBatch: 8, queue: 64,
		evCacheMB: 4, dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)

	// Hot-skewed inputs (K=2) so the caches actually serve hits.
	tc, err := rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 11,
	}.WithLocality(2)
	if err != nil {
		t.Fatal(err)
	}
	gen := rmssd.MustNewTrace(tc)

	const n = 24
	ref := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	denses := make([]rmssd.Vector, n)
	sparses := make([][][]int64, n)
	want := make([]float32, n)
	for i := 0; i < n; i++ {
		denses[i] = gen.DenseInput(i, cfg.DenseDim)
		sparses[i] = gen.Batch(1)[0]
		outs, _, _, err := ref.InferBatch(0, denses[i:i+1], sparses[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = outs[0]
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := serving.Request{Sparse: sparses[i : i+1], Dense: denses[i : i+1]}
			resp, err := s.def.pool.Submit(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			if len(resp.Preds) != 1 || math.Float32bits(resp.Preds[0]) != math.Float32bits(want[i]) {
				t.Errorf("request %d: cached pred %v, reference %v", i, resp.Preds, want[i])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	lk, ev, cached := s.def.localityStats()
	if !cached {
		t.Fatal("no EV cache installed on any shard")
	}
	if lk.DedupHits == 0 && ev.Hits == 0 {
		t.Errorf("hot trace produced no dedup or cache hits (lookups=%d)", lk.Lookups)
	}
}
