package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"rmssd/internal/obs"
	"rmssd/internal/params"
)

// Observability surface: the /metrics endpoint (Prometheus text format),
// optional pprof handlers, and the replay tracer wiring (-trace-out plus
// the per-stage cycle-breakdown table). Everything is off by default;
// disabled, the server and replay reports are byte-identical to a build
// without this file.

// enableMetrics creates the server's registry and installs a span sink on
// every shard device, so served batches stream their stage timings and
// counter deltas into live metrics. Call before serving traffic.
func (s *server) enableMetrics() {
	s.metrics = obs.NewRegistry()
	for _, m := range s.models {
		for _, sh := range m.shards {
			model, shard := m.name, sh.id
			if a := sh.array(); a != nil {
				// Array shards record one span per member device, labeled by
				// member index, so the flamegraph shows the scatter/gather.
				for di, dev := range a.Devices() {
					dev.SetSpanSink(func(sp obs.DeviceSpan) {
						obs.RecordMemberSpan(s.metrics, model, shard, di, sp)
					})
				}
				continue
			}
			sh.members()[0].SetSpanSink(func(sp obs.DeviceSpan) {
				obs.RecordDeviceSpan(s.metrics, model, shard, sp)
			})
		}
	}
}

// handleMetrics renders the registry in Prometheus text exposition format.
// Pool/router/locality counters owned by the serving layer are mirrored in
// at scrape time under the rmssd_model_* namespace (distinct from the
// span-driven families, which only ever Add), so one scrape shows both.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		http.Error(w, "metrics disabled (start rmserve with -metrics)", http.StatusNotFound)
		return
	}
	s.collectModelMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		// The response is already partially written; nothing to do but note it.
		return
	}
}

// collectModelMetrics mirrors the serving layer's cumulative counters into
// scrape-time gauges-as-counters (Counter.Set: the sources are themselves
// monotonic).
func (s *server) collectModelMetrics() {
	for _, m := range s.models {
		st, err := s.reg.ModelStats(m.name)
		if err != nil {
			continue
		}
		lk, ev, _ := m.localityStats()
		var fl FlashTotals
		for _, sh := range m.shards {
			fs, inf, _ := sh.snapshot()
			fl.add(fs.VectorReads, fs.PageReads, fs.BytesTransferred,
				fs.ReadFaults, fs.ECCRetries, fs.Uncorrectable, inf)
		}
		label := obs.L("model", m.name)
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"rmssd_model_submitted_total", st.Submitted},
			{"rmssd_model_rejected_total", st.Rejected},
			{"rmssd_model_failed_total", st.Failed},
			{"rmssd_model_waited_total", st.Waited},
			{"rmssd_model_requests_total", st.Pool.Requests},
			{"rmssd_model_inferences_total", st.Pool.Inferences},
			{"rmssd_model_device_batches_total", st.Pool.Batches},
			{"rmssd_model_shard_faults_total", st.Pool.Faults},
			{"rmssd_model_lookups_total", lk.Lookups},
			{"rmssd_model_dedup_hits_total", lk.DedupHits},
			{"rmssd_model_evcache_hits_total", ev.Hits},
			{"rmssd_model_evcache_misses_total", ev.Misses},
			{"rmssd_model_evcache_evictions_total", ev.Evictions},
			{"rmssd_model_flash_vector_reads_total", fl.vectorReads},
			{"rmssd_model_flash_page_reads_total", fl.pageReads},
			{"rmssd_model_flash_bytes_transferred_total", fl.bytes},
			{"rmssd_model_flash_read_faults_total", fl.readFaults},
			{"rmssd_model_flash_ecc_retries_total", fl.eccRetries},
			{"rmssd_model_flash_uncorrectable_total", fl.uncorrectable},
			{"rmssd_model_device_inferences_total", fl.inferences},
		} {
			s.metrics.Counter(c.name, label).Set(c.v)
		}
	}
}

// FlashTotals accumulates per-shard flash snapshots for one model.
type FlashTotals struct {
	vectorReads, pageReads, bytes         int64
	readFaults, eccRetries, uncorrectable int64
	inferences                            int64
}

func (f *FlashTotals) add(vr, pr, b, rf, er, un, inf int64) {
	f.vectorReads += vr
	f.pageReads += pr
	f.bytes += b
	f.readFaults += rf
	f.eccRetries += er
	f.uncorrectable += un
	f.inferences += inf
}

// mountPprof registers the net/http/pprof handlers on the mux. Gated
// behind -pprof: profiling endpoints expose host internals and cost cycles
// when scraped, so they are opt-in.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// installReplaySinks points every shard device of the hosted models at the
// tracer, keyed (model name, shard index) — the same key the replay's
// EndBatch uses, so device spans join their batch records.
func (s *server) installReplaySinks(t *obs.Tracer) {
	for _, m := range s.models {
		for _, sh := range m.shards {
			if a := sh.array(); a != nil {
				// One sink per member; the array emits the top member's span
				// last, which the tracer keeps as the batch's device span.
				for di, dev := range a.Devices() {
					dev.SetSpanSink(t.ArrayDeviceSink(m.name, sh.id, di))
				}
				continue
			}
			sh.members()[0].SetSpanSink(t.DeviceSink(m.name, sh.id))
		}
	}
}

// formatStages appends the model's per-stage cycle-breakdown table. Only
// traced replays print it, so untraced reports stay byte-identical.
func formatStages(sb *strings.Builder, t *obs.Tracer, model string) {
	bd := t.Breakdown(model)
	if bd.Batches == 0 {
		return
	}
	busy := bd.Send + bd.Emb + bd.Bot + bd.Top + bd.Read
	fmt.Fprintf(sb, "stages:       %d batches traced, %d requests (%d failed); queue wait %v total\n",
		bd.Batches, bd.Requests, bd.Failed, bd.Queue)
	row := func(name string, d time.Duration) {
		var share float64
		if busy > 0 {
			share = 100 * float64(d) / float64(busy)
		}
		fmt.Fprintf(sb, "  %-5s %14v %12d cycles %5.1f%%\n", name, d, int64(d/params.CycleTime), share)
	}
	row("send", bd.Send)
	row("emb", bd.Emb)
	row("bot", bd.Bot)
	row("top", bd.Top)
	row("read", bd.Read)
}

// writeTraceFile emits the tracer's records as JSONL ("-" for stdout).
func writeTraceFile(t *obs.Tracer, path string) error {
	if path == "-" {
		return t.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rmserve: trace out: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		//lint:allow errcheck the write error is what matters
		f.Close()
		return err
	}
	return f.Close()
}
