package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rmssd"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 1,
	})
	return &server{dev: dev, gen: gen, cfg: cfg}
}

func TestHandleInfo(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleInfo(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["model"] != "RMC1" || body["tables"].(float64) != 8 {
		t.Fatalf("body = %v", body)
	}
}

func TestHandleQPS(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=4", nil))
	var body map[string]interface{}
	json.NewDecoder(rec.Body).Decode(&body)
	if body["steadyStateQPS"].(float64) <= 0 {
		t.Fatal("no QPS reported")
	}
	// Invalid batch rejected.
	rec = httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=0", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for bad batch", rec.Code)
	}
}

func TestHandleInfer(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":2}`))
	s.handleInfer(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Predictions      []float64         `json:"predictions"`
		SimulatedLatency string            `json:"simulatedLatency"`
		Breakdown        map[string]string `json:"breakdown"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Predictions) != 2 {
		t.Fatalf("predictions = %v", body.Predictions)
	}
	for _, p := range body.Predictions {
		if p <= 0 || p >= 1 {
			t.Fatalf("CTR %v out of range", p)
		}
	}
	if _, err := time.ParseDuration(body.SimulatedLatency); err != nil {
		t.Fatalf("latency %q: %v", body.SimulatedLatency, err)
	}
	if len(body.Breakdown) != 5 {
		t.Fatalf("breakdown = %v", body.Breakdown)
	}
	// GET rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodGet, "/infer", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer status %d", rec.Code)
	}
	// Oversized batch rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":9999}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("huge batch status %d", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	// Run one inference so counters move.
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{}`)))
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var body map[string]interface{}
	json.NewDecoder(rec.Body).Decode(&body)
	if body["vectorReads"].(float64) <= 0 {
		t.Fatal("no vector reads counted")
	}
	if body["pageReads"].(float64) != 0 {
		t.Fatal("RM-SSD inference must not issue page reads")
	}
}
