package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rmssd"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 1,
	})
	return &server{dev: dev, gen: gen, cfg: cfg}
}

func TestHandleInfo(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleInfo(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["model"] != "RMC1" || body["tables"].(float64) != 8 {
		t.Fatalf("body = %v", body)
	}
}

func TestHandleQPS(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=4", nil))
	var body map[string]interface{}
	json.NewDecoder(rec.Body).Decode(&body)
	if body["steadyStateQPS"].(float64) <= 0 {
		t.Fatal("no QPS reported")
	}
	// Invalid batch rejected.
	rec = httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=0", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for bad batch", rec.Code)
	}
}

func TestHandleInfer(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":2}`))
	s.handleInfer(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Predictions      []float64         `json:"predictions"`
		SimulatedLatency string            `json:"simulatedLatency"`
		Breakdown        map[string]string `json:"breakdown"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Predictions) != 2 {
		t.Fatalf("predictions = %v", body.Predictions)
	}
	for _, p := range body.Predictions {
		if p <= 0 || p >= 1 {
			t.Fatalf("CTR %v out of range", p)
		}
	}
	if _, err := time.ParseDuration(body.SimulatedLatency); err != nil {
		t.Fatalf("latency %q: %v", body.SimulatedLatency, err)
	}
	if len(body.Breakdown) != 5 {
		t.Fatalf("breakdown = %v", body.Breakdown)
	}
	// GET rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodGet, "/infer", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer status %d", rec.Code)
	}
	// Oversized batch rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":9999}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("huge batch status %d", rec.Code)
	}
}

// TestConcurrentClients hammers every endpoint from parallel clients
// through the real mux. The simulator underneath is single-threaded by
// design, so the server's mutex is the only thing standing between HTTP
// concurrency and data races on the device's virtual clock — run with
// `go test -race ./cmd/rmserve` to make the race detector check it.
func TestConcurrentClients(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.routes())
	defer srv.Close()

	const (
		clients   = 8
		perClient = 5
		batch     = 2
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient*2)
	check := func(resp *http.Response, err error, what string) {
		if err != nil {
			errs <- fmt.Errorf("%s: %v", what, err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("%s: status %d: %s", what, resp.StatusCode, body)
		}
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/infer", "application/json",
					strings.NewReader(fmt.Sprintf(`{"batch":%d}`, batch)))
				check(resp, err, "POST /infer")
				path := [...]string{"/info", "/qps?batch=4", "/stats"}[(c+i)%3]
				resp, err = http.Get(srv.URL + path)
				check(resp, err, "GET "+path)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every submitted inference must be accounted for exactly once: lost or
	// double-counted batches would mean the lock is not covering the
	// device's virtual clock and sequence counter.
	s.mu.Lock()
	inferences, seq := s.dev.Inferences(), s.seq
	s.mu.Unlock()
	if want := int64(clients * perClient * batch); inferences != want {
		t.Errorf("device served %d inferences, want %d", inferences, want)
	}
	if want := clients * perClient * batch; seq != want {
		t.Errorf("trace sequence advanced to %d, want %d", seq, want)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t)
	// Run one inference so counters move.
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{}`)))
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var body map[string]interface{}
	json.NewDecoder(rec.Body).Decode(&body)
	if body["vectorReads"].(float64) <= 0 {
		t.Fatal("no vector reads counted")
	}
	if body["pageReads"].(float64) != 0 {
		t.Fatal("RM-SSD inference must not issue page reads")
	}
}
