package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rmssd"
	"rmssd/internal/serving"
)

func testServer(t *testing.T, shards int) *server {
	t.Helper()
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	s, err := newSingleServer(cfg, hostOptions{shards: shards, seed: 1, maxBatch: 8, queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	return s
}

func TestHandleInfo(t *testing.T) {
	s := testServer(t, 2)
	rec := httptest.NewRecorder()
	s.handleInfo(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["model"] != "RMC1" || body["tables"].(float64) != 8 {
		t.Fatalf("body = %v", body)
	}
	if body["shards"].(float64) != 2 {
		t.Fatalf("shards = %v", body["shards"])
	}
}

func TestHandleQPS(t *testing.T) {
	s := testServer(t, 3)
	rec := httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=4", nil))
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	per := body["steadyStateQPS"].(float64)
	if per <= 0 {
		t.Fatal("no QPS reported")
	}
	if agg := body["aggregateQPS"].(float64); agg != per*3 {
		t.Fatalf("aggregate %v != 3x per-shard %v", agg, per)
	}
	// Invalid batch rejected.
	rec = httptest.NewRecorder()
	s.handleQPS(rec, httptest.NewRequest(http.MethodGet, "/qps?batch=0", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d for bad batch", rec.Code)
	}
}

func TestHandleInfer(t *testing.T) {
	s := testServer(t, 2)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":2}`))
	s.handleInfer(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Predictions      []float64         `json:"predictions"`
		SimulatedLatency string            `json:"simulatedLatency"`
		Shard            int               `json:"shard"`
		CoalescedBatch   int               `json:"coalescedBatch"`
		Breakdown        map[string]string `json:"breakdown"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Predictions) != 2 {
		t.Fatalf("predictions = %v", body.Predictions)
	}
	for _, p := range body.Predictions {
		if p <= 0 || p >= 1 {
			t.Fatalf("CTR %v out of range", p)
		}
	}
	if _, err := time.ParseDuration(body.SimulatedLatency); err != nil {
		t.Fatalf("latency %q: %v", body.SimulatedLatency, err)
	}
	if body.Shard < 0 || body.Shard >= 2 || body.CoalescedBatch < 2 {
		t.Fatalf("shard=%d coalesced=%d", body.Shard, body.CoalescedBatch)
	}
	if len(body.Breakdown) != 5 {
		t.Fatalf("breakdown = %v", body.Breakdown)
	}
	// GET rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodGet, "/infer", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /infer status %d", rec.Code)
	}
	// Oversized batch rejected.
	rec = httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{"batch":9999}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("huge batch status %d", rec.Code)
	}
}

// TestConcurrentClients hammers every endpoint from parallel clients
// through the real mux. The shards share no simulation state — each has its
// own device, virtual clock and trace stream — so the only synchronisation
// is the pool's per-shard queues and each shard's stats mutex; run with
// `go test -race ./cmd/rmserve` to make the race detector check them.
func TestConcurrentClients(t *testing.T) {
	s := testServer(t, 4)
	srv := httptest.NewServer(s.routes())
	defer srv.Close()

	const (
		clients   = 8
		perClient = 5
		batch     = 2
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient*2)
	check := func(resp *http.Response, err error, what string) {
		if err != nil {
			errs <- fmt.Errorf("%s: %v", what, err)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			errs <- fmt.Errorf("%s: read body: %v", what, err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("%s: status %d: %s", what, resp.StatusCode, body)
		}
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/infer", "application/json",
					strings.NewReader(fmt.Sprintf(`{"batch":%d}`, batch)))
				check(resp, err, "POST /infer")
				path := [...]string{"/info", "/qps?batch=4", "/stats"}[(c+i)%3]
				resp, err = http.Get(srv.URL + path)
				check(resp, err, "GET "+path)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every submitted inference must be accounted for exactly once across
	// the shards: lost or double-counted batches would mean the pool
	// dropped or duplicated a coalesced request.
	var inferences int64
	var seq int
	for _, sh := range s.def.shards {
		_, inf, _ := sh.snapshot()
		inferences += inf
		sh.mu.Lock()
		seq += sh.seq
		sh.mu.Unlock()
	}
	if want := int64(clients * perClient * batch); inferences != want {
		t.Errorf("shards served %d inferences, want %d", inferences, want)
	}
	if want := clients * perClient * batch; seq != want {
		t.Errorf("trace sequences advanced to %d, want %d", seq, want)
	}
	if ps := s.def.pool.Stats(); ps.Requests != clients*perClient {
		t.Errorf("pool answered %d requests, want %d", ps.Requests, clients*perClient)
	}
}

// TestShardsIndependentClocks: two shards serve without advancing each
// other's virtual time.
func TestShardsIndependentClocks(t *testing.T) {
	s := testServer(t, 2)
	// Address shard 0 twice and shard 1 once via direct ServeBatch.
	one := []serving.Request{{N: 1}}
	s.def.shards[0].ServeBatch(one)
	s.def.shards[0].ServeBatch(one)
	s.def.shards[1].ServeBatch(one)
	_, _, now0 := s.def.shards[0].snapshot()
	_, _, now1 := s.def.shards[1].snapshot()
	if now0 <= now1 || now1 <= 0 {
		t.Fatalf("clocks: shard0=%v shard1=%v", now0, now1)
	}
}

func TestHandleStats(t *testing.T) {
	s := testServer(t, 2)
	// Run one inference so counters move.
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(`{}`)))
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["vectorReads"].(float64) <= 0 {
		t.Fatal("no vector reads counted")
	}
	if body["pageReads"].(float64) != 0 {
		t.Fatal("RM-SSD inference must not issue page reads")
	}
	if body["observedQPS"].(float64) <= 0 {
		t.Fatal("no observed QPS")
	}
	if len(body["shards"].([]interface{})) != 2 {
		t.Fatalf("shards = %v", body["shards"])
	}
}
