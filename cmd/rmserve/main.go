// Command rmserve exposes a simulated RM-SSD behind an HTTP API: a
// self-contained playground for exploring the device interactively.
//
//	rmserve -model RMC1 -table-mb 256 -addr :8080
//
// Endpoints:
//
//	GET  /info             device and model configuration
//	GET  /qps?batch=N      steady-state throughput at a device batch size
//	POST /infer            {"batch": N} -> CTR predictions + simulated timing
//	GET  /stats            flash traffic counters
//
// All timing in responses is simulated; the server itself is just a thin
// shell around the deterministic library.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rmssd"
)

// server wraps the device with a lock: the simulator is single-threaded by
// design (virtual time is global to the device).
type server struct {
	mu  sync.Mutex
	dev *rmssd.Device
	gen *rmssd.TraceGenerator
	cfg rmssd.ModelConfig
	now time.Duration // device-side simulated clock
	seq int
}

func main() {
	var (
		modelName = flag.String("model", "RMC1", "model to host (RMC1/RMC2/RMC3/NCF/WnD)")
		tableMB   = flag.Int64("table-mb", 256, "embedding table budget in MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 1, "trace seed")
	)
	flag.Parse()

	cfg, err := rmssd.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	cfg.RowsPerTable = cfg.RowsForBudget(*tableMB << 20)
	log.Printf("building RM-SSD for %s (%d MiB tables)...", cfg.Name, *tableMB)
	dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: *seed,
	})
	s := &server{dev: dev, gen: gen, cfg: cfg}

	mux := s.routes()
	log.Printf("serving on %s (device batch %d, steady-state %.0f QPS)",
		*addr, dev.NBatch(), dev.SteadyStateQPS(dev.NBatch()))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// routes wires the server's endpoints into a mux; shared by main and the
// concurrency tests so both exercise the same routing.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/qps", s.handleQPS)
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"model":        s.cfg.Name,
		"tables":       s.cfg.Tables,
		"lookups":      s.cfg.Lookups,
		"evDim":        s.cfg.EVDim,
		"rowsPerTable": s.cfg.RowsPerTable,
		"tableBytes":   s.cfg.TableBytes(),
		"deviceBatch":  s.dev.NBatch(),
	})
}

func (s *server) handleQPS(w http.ResponseWriter, r *http.Request) {
	batch := 1
	if b := r.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 || v > 4096 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch must be in [1,4096]"})
			return
		}
		batch = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"batch":          batch,
		"steadyStateQPS": s.dev.SteadyStateQPS(batch),
		"batchLatency":   s.dev.Latency(batch).String(),
	})
}

// inferRequest is /infer's body; Batch defaults to 1.
type inferRequest struct {
	Batch int `json:"batch"`
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Batch <= 0 {
		req.Batch = 1
	}
	if req.Batch > 256 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch too large (max 256)"})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	denses := make([]rmssd.Vector, req.Batch)
	for i := range denses {
		denses[i] = s.gen.DenseInput(s.seq+i, s.cfg.DenseDim)
	}
	sparses := s.gen.Batch(req.Batch)
	s.seq += req.Batch
	outs, done, bd := s.dev.InferBatch(s.now, denses, sparses)
	latency := done - s.now
	s.now = done
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"predictions":      outs,
		"simulatedLatency": latency.String(),
		"breakdown": map[string]string{
			"send": bd.Send.String(),
			"emb":  bd.Emb.String(),
			"bot":  bd.Bot.String(),
			"top":  bd.Top.String(),
			"read": bd.Read.String(),
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := s.dev.Device().Array().Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"vectorReads":      fs.VectorReads,
		"pageReads":        fs.PageReads,
		"bytesTransferred": fs.BytesTransferred,
		"inferences":       s.dev.Inferences(),
	})
}
