// Command rmserve exposes a simulated RM-SSD behind an HTTP API: a
// self-contained playground for exploring the device interactively.
//
//	rmserve -model RMC1 -table-mb 256 -shards 4 -addr :8080
//
// Endpoints:
//
//	GET  /info             device, model and shard configuration
//	GET  /qps?batch=N      analytic steady-state throughput (per shard and aggregate)
//	POST /infer            inference request -> CTR predictions + simulated timing
//	GET  /stats            aggregate flash traffic, per-shard clocks, observed QPS
//
// /infer accepts two request forms. The trace-driven form carries the
// inputs — per-inference sparse indices (and optionally dense vectors),
// exactly what the paper's RM_send_inputs interface transfers:
//
//	{"sparse": [[[i...] per table] per inference], "dense": [[f...] per inference]}
//
// The count-only demo form `{"batch": N}` instead synthesises N inferences
// from the shard's own locality-model generator. Either way the reply
// reports predictions, the simulated latency breakdown and how the request
// was coalesced.
//
// The server hosts -shards independent devices (default GOMAXPROCS), each
// with its own virtual clock, behind a batching front-end that coalesces
// concurrent requests landing on the same shard into one device batch
// (Section VI's consecutive-small-batch pipelining). There is no global
// lock: shards share no simulation state, so request handling scales with
// host cores while each shard's timeline stays deterministic.
//
// With -trace, rmserve does not serve HTTP at all: it replays a request
// stream through the sharded pool open-loop at -rate requests per
// simulated second and prints a deterministic latency/coalescing report
// (byte-identical for the same seed and shard count):
//
//	rmserve -trace synthetic -requests 2000 -rate 50000 -req-batch 2
//	rmserve -trace criteo -criteo-in day0.tsv -rate 50000
//
// Use cmd/rmreplay to drive the HTTP path from a trace instead.
//
// All timing in responses is simulated; the server itself is just a thin
// shell around the deterministic library.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rmssd"
	"rmssd/internal/serving"
)

// deviceShard is one independent device replica: its own virtual clock,
// trace stream and sequence counter. The pool calls ServeBatch from one
// goroutine; the mutex only fences those calls against stats readers.
type deviceShard struct {
	id  int
	dev *rmssd.Device
	gen *rmssd.TraceGenerator
	cfg rmssd.ModelConfig

	mu  sync.Mutex
	now time.Duration // shard-local simulated clock
	seq int           // trace sequence cursor
}

// ServeBatch implements serving.Batcher: concatenate the coalesced
// requests' inputs into one device batch at the shard's virtual now.
// Payload-carrying requests are served from exactly the indices they carry
// (the trace-driven path); count-only requests draw from the shard's own
// generator stream exactly as the original demo mode did.
func (d *deviceShard) ServeBatch(reqs []serving.Request) serving.BatchResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := serving.CountOf(reqs)
	denses := make([]rmssd.Vector, 0, n)
	sparses := make([][][]int64, 0, n)
	for _, req := range reqs {
		if req.Explicit() {
			for i, sp := range req.Sparse {
				sparses = append(sparses, sp)
				if req.Dense != nil {
					denses = append(denses, req.Dense[i])
				} else {
					denses = append(denses, make(rmssd.Vector, d.cfg.DenseDim))
				}
			}
			continue
		}
		for i := 0; i < req.N; i++ {
			denses = append(denses, d.gen.DenseInput(d.seq+i, d.cfg.DenseDim))
		}
		sparses = append(sparses, d.gen.Batch(req.N)...)
		d.seq += req.N
	}
	outs, done, bd := d.dev.InferBatch(d.now, denses, sparses)
	lat := done - d.now
	d.now = done
	return serving.BatchResult{Preds: outs, Latency: lat, Meta: bd}
}

// snapshot returns the shard's counters consistently.
func (d *deviceShard) snapshot() (fs rmssd.FlashStats, inferences int64, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dev.Device().Array().Stats(), d.dev.Inferences(), d.now
}

// server is the sharded HTTP front-end.
type server struct {
	cfg    rmssd.ModelConfig
	shards []*deviceShard
	pool   *serving.Pool
}

// newServer builds nshards independent devices for cfg. When several
// shards exist, each device simulates its flash channels sequentially
// (shard-level parallelism already saturates the host); a single shard
// keeps the device's own channel-parallel lanes.
func newServer(cfg rmssd.ModelConfig, nshards int, seed uint64, maxBatch, queueDepth int) (*server, error) {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	devParallel := 1
	if nshards == 1 {
		devParallel = 0 // GOMAXPROCS lanes inside the single device
	}
	s := &server{cfg: cfg}
	backends := make([]serving.Batcher, 0, nshards)
	for i := 0; i < nshards; i++ {
		dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{Parallel: devParallel})
		if err != nil {
			return nil, err
		}
		if maxBatch <= 0 {
			maxBatch = dev.NBatch()
		}
		sh := &deviceShard{
			id:  i,
			dev: dev,
			cfg: cfg,
			gen: rmssd.MustNewTrace(rmssd.TraceConfig{
				Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups,
				Seed: seed + uint64(i)*0x9e37,
			}),
		}
		s.shards = append(s.shards, sh)
		backends = append(backends, sh)
	}
	s.pool = serving.NewPool(backends, maxBatch, queueDepth)
	return s, nil
}

func main() {
	var (
		modelName = flag.String("model", "RMC1", "model to host (RMC1/RMC2/RMC3/NCF/WnD)")
		tableMB   = flag.Int64("table-mb", 256, "embedding table budget in MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 1, "trace seed")
		shards    = flag.Int("shards", 0, "independent device shards (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 0, "coalesced device batch cap (0 = device NBatch)")
		queue     = flag.Int("queue", 256, "per-shard request queue depth")
		traceMode = flag.String("trace", "", "replay a trace through the pool and exit: 'synthetic' or 'criteo'")
		criteoIn  = flag.String("criteo-in", "", "Criteo-format TSV file for -trace criteo")
		rate      = flag.Float64("rate", 50000, "replay offered load in requests per simulated second")
		requests  = flag.Int("requests", 2000, "replay request count (synthetic; criteo stops at EOF)")
		reqBatch  = flag.Int("req-batch", 1, "inferences per replayed request")
	)
	flag.Parse()

	cfg, err := rmssd.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	cfg.RowsPerTable = cfg.RowsForBudget(*tableMB << 20)
	log.Printf("building RM-SSD shards for %s (%d MiB tables)...", cfg.Name, *tableMB)
	s, err := newServer(cfg, *shards, *seed, *maxBatch, *queue)
	if err != nil {
		log.Fatal(err)
	}

	if *traceMode != "" {
		rc := replayConfig{
			Mode: *traceMode, CriteoIn: *criteoIn, Rate: *rate,
			Requests: *requests, ReqBatch: *reqBatch, Seed: *seed,
		}
		if err := s.runReplay(rc, os.Stdout); err != nil {
			log.Fatal(err)
		}
		s.pool.Close()
		return
	}

	mux := s.routes()
	dev := s.shards[0].dev
	log.Printf("serving on %s (%d shards, device batch %d, aggregate steady-state %.0f QPS)",
		*addr, len(s.shards), dev.NBatch(),
		dev.SteadyStateQPS(dev.NBatch())*float64(len(s.shards)))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// routes wires the server's endpoints into a mux; shared by main and the
// concurrency tests so both exercise the same routing.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/qps", s.handleQPS)
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"model":        s.cfg.Name,
		"tables":       s.cfg.Tables,
		"lookups":      s.cfg.Lookups,
		"evDim":        s.cfg.EVDim,
		"rowsPerTable": s.cfg.RowsPerTable,
		"denseDim":     s.cfg.DenseDim,
		"tableBytes":   s.cfg.TableBytes(),
		"deviceBatch":  s.shards[0].dev.NBatch(),
		"shards":       len(s.shards),
	})
}

func (s *server) handleQPS(w http.ResponseWriter, r *http.Request) {
	batch := 1
	if b := r.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 || v > 4096 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch must be in [1,4096]"})
			return
		}
		batch = v
	}
	// SteadyStateQPS and Latency are pure functions of the configuration;
	// no shard state is involved.
	per := s.shards[0].dev.SteadyStateQPS(batch)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"batch":          batch,
		"shards":         len(s.shards),
		"steadyStateQPS": per,
		"aggregateQPS":   per * float64(len(s.shards)),
		"batchLatency":   s.shards[0].dev.Latency(batch).String(),
	})
}

// inferRequest is /infer's body. Two forms:
//
//	{"batch": N}                      count-only; the server synthesises inputs
//	{"sparse": [[[i,...],...],...],   explicit payload: sparse[i][t] lists
//	 "dense": [[f,...],...]}          table t's lookups for inference i;
//	                                  dense is optional (zero vectors if absent)
type inferRequest struct {
	Batch  int            `json:"batch"`
	Sparse [][][]int64    `json:"sparse"`
	Dense  []rmssd.Vector `json:"dense"`
}

// maxInferBatch caps one request's inference count.
const maxInferBatch = 256

// validatePayload checks an explicit request against the hosted model's
// shape: every inference must carry cfg.Tables tables of cfg.Lookups
// in-range indices, and dense vectors (when present) must be DenseDim wide.
func validatePayload(cfg rmssd.ModelConfig, req serving.Request) error {
	for i, inf := range req.Sparse {
		if len(inf) != cfg.Tables {
			return fmt.Errorf("inference %d: %d tables, want %d", i, len(inf), cfg.Tables)
		}
		for t, idx := range inf {
			if len(idx) != cfg.Lookups {
				return fmt.Errorf("inference %d table %d: %d lookups, want %d", i, t, len(idx), cfg.Lookups)
			}
			for _, row := range idx {
				if row < 0 || row >= cfg.RowsPerTable {
					return fmt.Errorf("inference %d table %d: row %d outside [0,%d)", i, t, row, cfg.RowsPerTable)
				}
			}
		}
		if req.Dense != nil && len(req.Dense[i]) != cfg.DenseDim {
			return fmt.Errorf("inference %d: dense dim %d, want %d", i, len(req.Dense[i]), cfg.DenseDim)
		}
	}
	return nil
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var sreq serving.Request
	switch {
	case len(req.Sparse) > 0:
		if req.Batch > 0 && req.Batch != len(req.Sparse) {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("batch %d does not match %d sparse inferences", req.Batch, len(req.Sparse))})
			return
		}
		if len(req.Sparse) > maxInferBatch {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch too large (max 256)"})
			return
		}
		if req.Dense != nil && len(req.Dense) != len(req.Sparse) {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("%d dense vectors for %d inferences", len(req.Dense), len(req.Sparse))})
			return
		}
		sreq = serving.Request{Sparse: req.Sparse, Dense: req.Dense}
		if err := validatePayload(s.cfg, sreq); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
	case req.Dense != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "dense payload without sparse indices"})
		return
	default:
		if req.Batch <= 0 {
			req.Batch = 1
		}
		if req.Batch > maxInferBatch {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch too large (max 256)"})
			return
		}
		sreq = serving.Request{N: req.Batch}
	}
	resp, err := s.pool.Submit(r.Context(), sreq)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, serving.ErrPoolClosed) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	bd, _ := resp.Meta.(rmssd.Breakdown)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"predictions":       resp.Preds,
		"simulatedLatency":  resp.Latency.String(),
		"shard":             resp.Shard,
		"coalescedBatch":    resp.BatchSize,
		"coalescedRequests": resp.Coalesced,
		"breakdown": map[string]string{
			"send": bd.Send.String(),
			"emb":  bd.Emb.String(),
			"bot":  bd.Bot.String(),
			"top":  bd.Top.String(),
			"read": bd.Read.String(),
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		vectorReads, pageReads, bytesTransferred, inferences int64
		observedQPS                                          float64
		perShard                                             []map[string]interface{}
	)
	for _, sh := range s.shards {
		fs, inf, now := sh.snapshot()
		vectorReads += fs.VectorReads
		pageReads += fs.PageReads
		bytesTransferred += fs.BytesTransferred
		inferences += inf
		var qps float64
		if now > 0 {
			qps = float64(inf) / now.Seconds()
		}
		observedQPS += qps
		perShard = append(perShard, map[string]interface{}{
			"shard":      sh.id,
			"inferences": inf,
			"simClock":   now.String(),
			"qps":        qps,
		})
	}
	ps := s.pool.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"vectorReads":      vectorReads,
		"pageReads":        pageReads,
		"bytesTransferred": bytesTransferred,
		"inferences":       inferences,
		"observedQPS":      observedQPS,
		"requests":         ps.Requests,
		"deviceBatches":    ps.Batches,
		"meanBatch":        ps.MeanBatch,
		"shards":           perShard,
	})
}
