// Command rmserve exposes a simulated RM-SSD behind an HTTP API: a
// self-contained playground for exploring the device interactively.
//
//	rmserve -model RMC1 -table-mb 256 -shards 4 -addr :8080
//
// Endpoints:
//
//	GET  /info             device, model and shard configuration
//	GET  /qps?batch=N      analytic steady-state throughput (per shard and aggregate)
//	POST /infer            {"batch": N} -> CTR predictions + simulated timing
//	GET  /stats            aggregate flash traffic, per-shard clocks, observed QPS
//
// The server hosts -shards independent devices (default GOMAXPROCS), each
// with its own virtual clock, behind a batching front-end that coalesces
// concurrent requests landing on the same shard into one device batch
// (Section VI's consecutive-small-batch pipelining). There is no global
// lock: shards share no simulation state, so request handling scales with
// host cores while each shard's timeline stays deterministic.
//
// All timing in responses is simulated; the server itself is just a thin
// shell around the deterministic library.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rmssd"
	"rmssd/internal/serving"
)

// deviceShard is one independent device replica: its own virtual clock,
// trace stream and sequence counter. The pool calls ServeBatch from one
// goroutine; the mutex only fences those calls against stats readers.
type deviceShard struct {
	id  int
	dev *rmssd.Device
	gen *rmssd.TraceGenerator
	cfg rmssd.ModelConfig

	mu  sync.Mutex
	now time.Duration // shard-local simulated clock
	seq int           // trace sequence cursor
}

// ServeBatch implements serving.Batcher: run n inferences as one device
// batch at the shard's virtual now.
func (d *deviceShard) ServeBatch(n int) serving.BatchResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	denses := make([]rmssd.Vector, n)
	for i := range denses {
		denses[i] = d.gen.DenseInput(d.seq+i, d.cfg.DenseDim)
	}
	sparses := d.gen.Batch(n)
	d.seq += n
	outs, done, bd := d.dev.InferBatch(d.now, denses, sparses)
	lat := done - d.now
	d.now = done
	return serving.BatchResult{Preds: outs, Latency: lat, Meta: bd}
}

// snapshot returns the shard's counters consistently.
func (d *deviceShard) snapshot() (fs rmssd.FlashStats, inferences int64, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dev.Device().Array().Stats(), d.dev.Inferences(), d.now
}

// server is the sharded HTTP front-end.
type server struct {
	cfg    rmssd.ModelConfig
	shards []*deviceShard
	pool   *serving.Pool
}

// newServer builds nshards independent devices for cfg. When several
// shards exist, each device simulates its flash channels sequentially
// (shard-level parallelism already saturates the host); a single shard
// keeps the device's own channel-parallel lanes.
func newServer(cfg rmssd.ModelConfig, nshards int, seed uint64, maxBatch, queueDepth int) (*server, error) {
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	devParallel := 1
	if nshards == 1 {
		devParallel = 0 // GOMAXPROCS lanes inside the single device
	}
	s := &server{cfg: cfg}
	backends := make([]serving.Batcher, 0, nshards)
	for i := 0; i < nshards; i++ {
		dev, err := rmssd.NewDevice(cfg, rmssd.DeviceOptions{Parallel: devParallel})
		if err != nil {
			return nil, err
		}
		if maxBatch <= 0 {
			maxBatch = dev.NBatch()
		}
		sh := &deviceShard{
			id:  i,
			dev: dev,
			cfg: cfg,
			gen: rmssd.MustNewTrace(rmssd.TraceConfig{
				Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups,
				Seed: seed + uint64(i)*0x9e37,
			}),
		}
		s.shards = append(s.shards, sh)
		backends = append(backends, sh)
	}
	s.pool = serving.NewPool(backends, maxBatch, queueDepth)
	return s, nil
}

func main() {
	var (
		modelName = flag.String("model", "RMC1", "model to host (RMC1/RMC2/RMC3/NCF/WnD)")
		tableMB   = flag.Int64("table-mb", 256, "embedding table budget in MiB")
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 1, "trace seed")
		shards    = flag.Int("shards", 0, "independent device shards (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 0, "coalesced device batch cap (0 = device NBatch)")
		queue     = flag.Int("queue", 256, "per-shard request queue depth")
	)
	flag.Parse()

	cfg, err := rmssd.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	cfg.RowsPerTable = cfg.RowsForBudget(*tableMB << 20)
	log.Printf("building RM-SSD shards for %s (%d MiB tables)...", cfg.Name, *tableMB)
	s, err := newServer(cfg, *shards, *seed, *maxBatch, *queue)
	if err != nil {
		log.Fatal(err)
	}

	mux := s.routes()
	dev := s.shards[0].dev
	log.Printf("serving on %s (%d shards, device batch %d, aggregate steady-state %.0f QPS)",
		*addr, len(s.shards), dev.NBatch(),
		dev.SteadyStateQPS(dev.NBatch())*float64(len(s.shards)))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// routes wires the server's endpoints into a mux; shared by main and the
// concurrency tests so both exercise the same routing.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/qps", s.handleQPS)
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"model":        s.cfg.Name,
		"tables":       s.cfg.Tables,
		"lookups":      s.cfg.Lookups,
		"evDim":        s.cfg.EVDim,
		"rowsPerTable": s.cfg.RowsPerTable,
		"tableBytes":   s.cfg.TableBytes(),
		"deviceBatch":  s.shards[0].dev.NBatch(),
		"shards":       len(s.shards),
	})
}

func (s *server) handleQPS(w http.ResponseWriter, r *http.Request) {
	batch := 1
	if b := r.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 || v > 4096 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch must be in [1,4096]"})
			return
		}
		batch = v
	}
	// SteadyStateQPS and Latency are pure functions of the configuration;
	// no shard state is involved.
	per := s.shards[0].dev.SteadyStateQPS(batch)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"batch":          batch,
		"shards":         len(s.shards),
		"steadyStateQPS": per,
		"aggregateQPS":   per * float64(len(s.shards)),
		"batchLatency":   s.shards[0].dev.Latency(batch).String(),
	})
}

// inferRequest is /infer's body; Batch defaults to 1.
type inferRequest struct {
	Batch int `json:"batch"`
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Batch <= 0 {
		req.Batch = 1
	}
	if req.Batch > 256 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch too large (max 256)"})
		return
	}
	resp, err := s.pool.Infer(req.Batch)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	bd, _ := resp.Meta.(rmssd.Breakdown)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"predictions":      resp.Preds,
		"simulatedLatency": resp.Latency.String(),
		"shard":            resp.Shard,
		"coalescedBatch":   resp.BatchSize,
		"breakdown": map[string]string{
			"send": bd.Send.String(),
			"emb":  bd.Emb.String(),
			"bot":  bd.Bot.String(),
			"top":  bd.Top.String(),
			"read": bd.Read.String(),
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		vectorReads, pageReads, bytesTransferred, inferences int64
		observedQPS                                          float64
		perShard                                             []map[string]interface{}
	)
	for _, sh := range s.shards {
		fs, inf, now := sh.snapshot()
		vectorReads += fs.VectorReads
		pageReads += fs.PageReads
		bytesTransferred += fs.BytesTransferred
		inferences += inf
		var qps float64
		if now > 0 {
			qps = float64(inf) / now.Seconds()
		}
		observedQPS += qps
		perShard = append(perShard, map[string]interface{}{
			"shard":      sh.id,
			"inferences": inf,
			"simClock":   now.String(),
			"qps":        qps,
		})
	}
	ps := s.pool.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"vectorReads":      vectorReads,
		"pageReads":        pageReads,
		"bytesTransferred": bytesTransferred,
		"inferences":       inferences,
		"observedQPS":      observedQPS,
		"requests":         ps.Requests,
		"deviceBatches":    ps.Batches,
		"meanBatch":        ps.MeanBatch,
		"shards":           perShard,
	})
}
