// Command rmserve exposes simulated RM-SSDs behind an HTTP API: a
// self-contained playground for exploring the device interactively.
//
//	rmserve -model RMC1 -table-mb 256 -shards 4 -addr :8080
//	rmserve -models config.json -host-budget 8 -addr :8080
//
// Endpoints:
//
//	GET  /info             device, model and shard configuration
//	GET  /models           hosted models with live per-model counters
//	GET  /qps?batch=N      analytic steady-state throughput (add &model=NAME)
//	POST /infer            inference request -> CTR predictions + simulated timing
//	GET  /stats            aggregate flash traffic, per-shard clocks, observed QPS
//
// /infer accepts two request forms, optionally addressed to a hosted model
// by name (`"model": "ctr"`; the first configured model is the default).
// The trace-driven form carries the inputs — per-inference sparse indices
// (and optionally dense vectors), exactly what the paper's RM_send_inputs
// interface transfers:
//
//	{"model": "ctr", "sparse": [[[i...] per table] per inference], "dense": [[f...] per inference]}
//
// The count-only demo form `{"batch": N}` instead synthesises N inferences
// from the shard's own locality-model generator. Either way the reply
// reports predictions, the simulated latency breakdown and how the request
// was coalesced.
//
// Single-model mode hosts -shards independent devices (default GOMAXPROCS)
// behind a batching front-end that coalesces concurrent requests landing on
// the same shard into one device batch (Section VI's consecutive-small-batch
// pipelining). Multi-model mode (-models config.json) hosts several
// heterogeneous replicas — different architectures, table budgets and shard
// counts — each behind its own pool, with a router dispatching by model
// name. -host-budget B bounds the requests in flight across all models at
// once (the models share the host's cores and PCIe lanes even though their
// devices are independent); freed slots are granted by weighted round robin
// over the waiting models.
//
// With -trace, rmserve does not serve HTTP at all: it replays a request
// stream through the pool(s) open-loop at -rate requests per simulated
// second and prints a deterministic latency/coalescing report
// (byte-identical for the same seed and configuration). In multi-model mode
// the replay interleaves each model's stream by weight and reports one
// section per model plus the aggregate:
//
//	rmserve -trace synthetic -requests 2000 -rate 50000 -req-batch 2
//	rmserve -trace criteo -criteo-in day0.tsv -rate 50000
//	rmserve -models config.json -trace synthetic -requests 2000 -rate 50000
//
// Use cmd/rmreplay to drive the HTTP path from a trace instead.
//
// All timing in responses is simulated; the server itself is just a thin
// shell around the deterministic library.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"rmssd"
	"rmssd/internal/obs"
	"rmssd/internal/serving"
)

// backendDevice is the compute backend behind one shard: a single simulated
// device or a multi-device array (sim.Time is a time.Duration alias, so the
// two expose identical signatures for everything the serving path needs).
type backendDevice interface {
	ValidateInputs(denses []rmssd.Vector, sparses [][][]int64) error
	InferBatch(at time.Duration, denses []rmssd.Vector, sparses [][][]int64) ([]float32, time.Duration, rmssd.Breakdown, error)
	NBatch() int
	Inferences() int64
	SteadyStateQPS(n int) float64
	Latency(n int) time.Duration
}

// deviceShard is one independent device replica: its own virtual clock,
// trace stream and sequence counter. The pool calls ServeBatch from one
// goroutine; the mutex only fences those calls against stats readers.
type deviceShard struct {
	id  int
	dev backendDevice
	gen *rmssd.TraceGenerator
	cfg rmssd.ModelConfig

	mu  sync.Mutex
	now time.Duration // shard-local simulated clock
	seq int           // trace sequence cursor

	// Batch-assembly scratch, reused across ServeBatch calls (the serving
	// contract guarantees one caller at a time). zeroDense stands in for
	// absent dense payloads; the MLP only reads its inputs, so one shared
	// zero vector serves every inference.
	denses    []rmssd.Vector
	sparses   [][][]int64
	zeroDense rmssd.Vector
}

// ServeBatch implements serving.Batcher: concatenate the coalesced
// requests' inputs into one device batch at the shard's virtual now.
// Payload-carrying requests are served from exactly the indices they carry
// (the trace-driven path); count-only requests draw from the shard's own
// generator stream exactly as the original demo mode did.
func (d *deviceShard) ServeBatch(reqs []serving.Request) serving.BatchResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.zeroDense == nil {
		d.zeroDense = make(rmssd.Vector, d.cfg.DenseDim)
	}
	denses := d.denses[:0]
	sparses := d.sparses[:0]
	var reqErrs []error
	for ri, req := range reqs {
		if req.Explicit() {
			mark := len(sparses)
			for i, sp := range req.Sparse {
				sparses = append(sparses, sp)
				if req.Dense != nil {
					denses = append(denses, req.Dense[i])
				} else {
					denses = append(denses, d.zeroDense)
				}
			}
			// Prevalidate this request's slice of the batch on its own: a
			// malformed payload (wrong shape, out-of-range row) fails exactly
			// its submission with a typed error while its coalesced
			// batch-mates are served normally.
			if err := d.dev.ValidateInputs(denses[mark:], sparses[mark:]); err != nil {
				if reqErrs == nil {
					reqErrs = make([]error, len(reqs))
				}
				reqErrs[ri] = err
				denses = denses[:mark]
				sparses = sparses[:mark]
			}
			continue
		}
		for i := 0; i < req.N; i++ {
			denses = append(denses, d.gen.DenseInput(d.seq+i, d.cfg.DenseDim))
		}
		sparses = append(sparses, d.gen.Batch(req.N)...)
		d.seq += req.N
	}
	res := serving.BatchResult{ReqErrs: reqErrs}
	if len(sparses) > 0 {
		// Device-level failure (e.g. an injected uncorrectable read) fails
		// everyone who rode the batch; the clock still advances because the
		// device did the work up to the failure.
		outs, done, bd, err := d.dev.InferBatch(d.now, denses, sparses)
		res.Preds, res.Latency, res.Meta, res.Err = outs, done-d.now, bd, err
		d.now = done
	}
	// Drop payload references before the next batch; keep the capacity.
	clear(denses)
	clear(sparses)
	d.denses, d.sparses = denses[:0], sparses[:0]
	return res
}

// array returns the shard's backend as a multi-device array, or nil for a
// plain single-device shard.
func (d *deviceShard) array() *rmssd.Array {
	a, _ := d.dev.(*rmssd.Array)
	return a
}

// members returns the shard's member devices in index order: the device
// itself for a plain shard, every array member otherwise. Flash, locality
// and fault surfaces all live per member.
func (d *deviceShard) members() []*rmssd.Device {
	if a := d.array(); a != nil {
		return a.Devices()
	}
	return []*rmssd.Device{d.dev.(*rmssd.Device)}
}

// snapshot returns the shard's counters consistently; flash traffic is
// summed over member devices.
func (d *deviceShard) snapshot() (fs rmssd.FlashStats, inferences int64, now time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, dev := range d.members() {
		st := dev.Device().Array().Stats()
		fs.PageReads += st.PageReads
		fs.VectorReads += st.VectorReads
		fs.PageWrites += st.PageWrites
		fs.Erases += st.Erases
		fs.BytesTransferred += st.BytesTransferred
		fs.BytesFlushed += st.BytesFlushed
		fs.ReadFaults += st.ReadFaults
		fs.ECCRetries += st.ECCRetries
		fs.Uncorrectable += st.Uncorrectable
	}
	return fs, d.dev.Inferences(), d.now
}

// arrayStats sums the model's array scatter/gather counters across shards;
// ok reports whether the model is array-backed at all.
func (m *hostedModel) arrayStats() (total rmssd.ArrayStats, ok bool) {
	for _, sh := range m.shards {
		a := sh.array()
		if a == nil {
			return rmssd.ArrayStats{}, false
		}
		sh.mu.Lock()
		st := a.Stats()
		sh.mu.Unlock()
		total.Devices = st.Devices
		total.Partition = st.Partition
		total.Batches += st.Batches
		total.Inferences += st.Inferences
		if total.Scattered == nil {
			total.Scattered = make([]int64, len(st.Scattered))
		}
		for d, n := range st.Scattered {
			total.Scattered[d] += n
		}
		total.Partials += st.Partials
		total.Transfers += st.Transfers
		total.TransferBytes += st.TransferBytes
	}
	return total, true
}

// hostedModel is one named model on the server: its config, device shards
// and effective batching parameters. The pool itself lives in the registry;
// the pointer here is a convenience for the handlers and tests.
type hostedModel struct {
	name     string
	weight   int
	cfg      rmssd.ModelConfig
	shards   []*deviceShard
	pool     *serving.Pool
	maxBatch int
	queue    int
}

// hostOptions bundles a hosted model's serving knobs.
type hostOptions struct {
	shards   int // independent devices (<=0 = GOMAXPROCS)
	seed     uint64
	maxBatch int // coalesced device batch cap (<=0 = device NBatch)
	queue    int // per-shard queue depth
	weight   int // WRR admission weight
	// evCacheMB budgets each shard's device-DRAM EV cache in MiB (0 = off);
	// dedup merges duplicate (table,row) lookups within a device batch.
	// Both are value-preserving: predictions are unchanged, only the
	// simulated timing improves on skewed traffic.
	evCacheMB int64
	dedup     bool
	// faultRate/faultSeed enable deterministic flash read-fault injection
	// on every shard device (0 rate = off, the default: timelines and
	// predictions stay byte-identical to an unfaulted server).
	faultRate float64
	faultSeed uint64
	// arrayDevices > 1 backs each shard with a multi-device array: the
	// model's tables are partitioned across that many member SSDs per
	// `partition` ("range" or "hash"; empty = range). Predictions stay
	// byte-identical to a single device hosting the whole model.
	arrayDevices int
	partition    string
}

// newHostedModel builds o.shards independent devices for cfg. When several
// shards exist, each device simulates its flash channels sequentially
// (shard-level parallelism already saturates the host); a single shard
// keeps the device's own channel-parallel lanes.
func newHostedModel(name string, cfg rmssd.ModelConfig, o hostOptions) (*hostedModel, error) {
	nshards := o.shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	devParallel := 1
	if nshards == 1 {
		devParallel = 0 // GOMAXPROCS lanes inside the single device
	}
	if o.partition != "" && o.arrayDevices <= 1 {
		return nil, fmt.Errorf("rmserve: model %q: partition %q needs arrayDevices > 1", name, o.partition)
	}
	m := &hostedModel{name: name, weight: o.weight, cfg: cfg, queue: o.queue}
	maxBatch := o.maxBatch
	for i := 0; i < nshards; i++ {
		opts := rmssd.DeviceOptions{
			Parallel:     devParallel,
			EVCacheBytes: o.evCacheMB << 20,
			DedupLookups: o.dedup,
			// Per-shard seed offset mirrors the trace generator's, so shards
			// draw independent (but reproducible) fault sequences.
			FaultPlan:    rmssd.FaultPlan{Rate: o.faultRate, Seed: o.faultSeed + uint64(i)*0x9e37},
			ArrayDevices: o.arrayDevices,
			Partition:    o.partition,
		}
		var (
			dev backendDevice
			err error
		)
		if o.arrayDevices > 1 {
			dev, err = rmssd.NewArray(cfg, opts)
		} else {
			dev, err = rmssd.NewDevice(cfg, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("rmserve: model %q: %w", name, err)
		}
		if maxBatch <= 0 {
			maxBatch = dev.NBatch()
		}
		m.shards = append(m.shards, &deviceShard{
			id:  i,
			dev: dev,
			cfg: cfg,
			gen: rmssd.MustNewTrace(rmssd.TraceConfig{
				Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups,
				Seed: o.seed + uint64(i)*0x9e37,
			}),
		})
	}
	m.maxBatch = maxBatch
	return m, nil
}

// localityStats aggregates the model's lookup-engine and EV-cache counters
// across shards; cached reports whether any shard has a cache installed.
func (m *hostedModel) localityStats() (lk rmssd.LookupStats, ev rmssd.EVCacheStats, cached bool) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, dev := range sh.members() {
			st := dev.Lookup().Stats()
			lk.Lookups += st.Lookups
			lk.BytesPooled += st.BytesPooled
			lk.DedupHits += st.DedupHits
			if c := dev.Lookup().EVCache(); c != nil {
				cached = true
				cs := c.Stats()
				ev.Hits += cs.Hits
				ev.Misses += cs.Misses
				ev.Evictions += cs.Evictions
			}
		}
		sh.mu.Unlock()
	}
	return lk, ev, cached
}

// backends adapts the shards to the serving layer.
func (m *hostedModel) backends() []serving.Batcher {
	bs := make([]serving.Batcher, len(m.shards))
	for i, sh := range m.shards {
		bs[i] = sh
	}
	return bs
}

// server is the multi-model HTTP front-end: a registry of per-model pools
// with a router dispatching by model name. The first hosted model is the
// default for requests that do not name one, which keeps the single-model
// API unchanged.
type server struct {
	reg    *serving.Registry
	router *serving.Router
	models []*hostedModel
	byName map[string]*hostedModel
	def    *hostedModel

	// metrics is the observability registry behind /metrics; nil (the
	// default) keeps the endpoint returning 404 and the devices span-free.
	metrics *obs.Registry
}

// newServer registers the hosted models and builds the router with the
// shared host budget (0 = unlimited).
func newServer(hosted []*hostedModel, budget int) (*server, error) {
	if len(hosted) == 0 {
		return nil, errors.New("rmserve: no models to host")
	}
	s := &server{
		reg:    serving.NewRegistry(),
		models: hosted,
		byName: make(map[string]*hostedModel, len(hosted)),
		def:    hosted[0],
	}
	for _, m := range hosted {
		err := s.reg.Register(serving.ModelSpec{
			Name:       m.name,
			Backends:   m.backends(),
			MaxBatch:   m.maxBatch,
			QueueDepth: m.queue,
			Weight:     m.weight,
		})
		if err != nil {
			s.reg.Close()
			return nil, err
		}
		if m.pool, err = s.reg.Pool(m.name); err != nil {
			s.reg.Close()
			return nil, err
		}
		s.byName[m.name] = m
	}
	s.router = serving.NewRouter(s.reg, budget)
	return s, nil
}

// newSingleServer is the single-model construction used by the classic
// flag set (and most tests): one hosted model under its architecture name.
func newSingleServer(cfg rmssd.ModelConfig, o hostOptions) (*server, error) {
	if o.weight == 0 {
		o.weight = 1
	}
	m, err := newHostedModel(cfg.Name, cfg, o)
	if err != nil {
		return nil, err
	}
	return newServer([]*hostedModel{m}, 0)
}

// close shuts down every pool.
func (s *server) close() { s.reg.Close() }

// resolve maps a request's model name to its hosted model; empty names get
// the default model.
func (s *server) resolve(name string) (*hostedModel, error) {
	if name == "" {
		return s.def, nil
	}
	m, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", serving.ErrUnknownModel, name)
	}
	return m, nil
}

func main() {
	var (
		modelName  = flag.String("model", "RMC1", "model to host (RMC1/RMC2/RMC3/NCF/WnD)")
		tableMB    = flag.Int64("table-mb", 256, "embedding table budget in MiB")
		modelsFile = flag.String("models", "", "JSON file declaring hosted models (multi-model mode; overrides -model)")
		hostBudget = flag.Int("host-budget", 0, "shared in-flight request budget across models (0 = unlimited)")
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Uint64("seed", 1, "trace seed")
		shards     = flag.Int("shards", 0, "independent device shards (0 = GOMAXPROCS; single-model mode)")
		maxBatch   = flag.Int("max-batch", 0, "coalesced device batch cap (0 = device NBatch; single-model mode)")
		queue      = flag.Int("queue", 256, "per-shard request queue depth (single-model mode)")
		evCacheMB  = flag.Int64("ev-cache-mb", 0, "device-DRAM EV cache budget per shard in MiB (0 = off; single-model mode)")
		dedup      = flag.Bool("dedup", false, "merge duplicate (table,row) lookups within a device batch (single-model mode)")
		faultRate  = flag.Float64("fault-rate", 0, "per-attempt flash ECC failure probability in [0,1) (0 = off; single-model mode)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for deterministic fault injection (single-model mode)")
		arrayDevs  = flag.Int("array-devices", 0, "member SSDs per shard: >1 partitions each table across a device array (single-model mode)")
		partition  = flag.String("partition", "", "array partition strategy: 'range' or 'hash' (needs -array-devices > 1; single-model mode)")
		traceMode  = flag.String("trace", "", "replay a trace through the pool(s) and exit: 'synthetic' or 'criteo'")
		criteoIn   = flag.String("criteo-in", "", "Criteo-format TSV file for -trace criteo")
		rate       = flag.Float64("rate", 50000, "replay offered load in requests per simulated second")
		requests   = flag.Int("requests", 2000, "replay request count (synthetic; criteo stops at EOF)")
		reqBatch   = flag.Int("req-batch", 1, "inferences per replayed request")
		metrics    = flag.Bool("metrics", false, "expose the /metrics endpoint (Prometheus text format)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOut   = flag.String("trace-out", "", "replay mode: write the sim-time trace as JSONL to this file ('-' = stdout)")
	)
	flag.Parse()

	var (
		s   *server
		err error
	)
	if *modelsFile != "" {
		mc, lerr := loadModelsConfig(*modelsFile)
		if lerr != nil {
			log.Fatal(lerr)
		}
		log.Printf("building RM-SSD pools for %d models...", len(mc.Models))
		hosted, berr := mc.build(*seed)
		if berr != nil {
			log.Fatal(berr)
		}
		s, err = newServer(hosted, *hostBudget)
	} else {
		cfg, cerr := rmssd.ModelByName(*modelName)
		if cerr != nil {
			log.Fatal(cerr)
		}
		cfg.RowsPerTable = cfg.RowsForBudget(*tableMB << 20)
		log.Printf("building RM-SSD shards for %s (%d MiB tables)...", cfg.Name, *tableMB)
		s, err = newSingleServer(cfg, hostOptions{
			shards: *shards, seed: *seed, maxBatch: *maxBatch, queue: *queue,
			evCacheMB: *evCacheMB, dedup: *dedup,
			faultRate: *faultRate, faultSeed: *faultSeed,
			arrayDevices: *arrayDevs, partition: *partition,
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	if *traceMode != "" {
		rc := replayConfig{
			Mode: *traceMode, CriteoIn: *criteoIn, Rate: *rate,
			Requests: *requests, ReqBatch: *reqBatch, Seed: *seed,
			TraceOut: *traceOut,
		}
		if *traceOut != "" || *metrics {
			rc.Tracer = obs.NewTracer(obs.NewRegistry())
		}
		if err := s.runReplay(rc, os.Stdout); err != nil {
			log.Fatal(err)
		}
		s.close()
		return
	}

	if *metrics {
		s.enableMetrics()
	}
	mux := s.routes()
	if *pprofOn {
		mountPprof(mux)
	}
	var agg float64
	for _, m := range s.models {
		dev := m.shards[0].dev
		agg += dev.SteadyStateQPS(dev.NBatch()) * float64(len(m.shards))
	}
	log.Printf("serving on %s (%d models, budget %d, aggregate steady-state %.0f QPS)",
		*addr, len(s.models), s.router.Budget(), agg)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// routes wires the server's endpoints into a mux; shared by main and the
// concurrency tests so both exercise the same routing.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/qps", s.handleQPS)
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	// The top-level fields describe the default model, which keeps the
	// single-model API shape; `models` lists every hosted name.
	info := map[string]interface{}{
		"model":        s.def.cfg.Name,
		"tables":       s.def.cfg.Tables,
		"lookups":      s.def.cfg.Lookups,
		"evDim":        s.def.cfg.EVDim,
		"rowsPerTable": s.def.cfg.RowsPerTable,
		"denseDim":     s.def.cfg.DenseDim,
		"tableBytes":   s.def.cfg.TableBytes(),
		"deviceBatch":  s.def.shards[0].dev.NBatch(),
		"shards":       len(s.def.shards),
		"models":       s.reg.Models(),
		"defaultModel": s.def.name,
		"hostBudget":   s.router.Budget(),
	}
	if a := s.def.shards[0].array(); a != nil {
		info["arrayDevices"] = a.Layout().Devices()
		info["partition"] = string(a.Layout().Strategy())
	}
	writeJSON(w, http.StatusOK, info)
}

// handleModels lists every hosted model's configuration alongside its live
// routing, latency and coalescing counters, in sorted name order so the
// response bytes are deterministic by construction.
func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	hosted := append([]*hostedModel(nil), s.models...)
	sort.Slice(hosted, func(i, j int) bool { return hosted[i].name < hosted[j].name })
	out := make([]map[string]interface{}, 0, len(hosted))
	for _, m := range hosted {
		st, err := s.reg.ModelStats(m.name)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		out = append(out, map[string]interface{}{
			"name":           m.name,
			"model":          m.cfg.Name,
			"tables":         m.cfg.Tables,
			"lookups":        m.cfg.Lookups,
			"evDim":          m.cfg.EVDim,
			"rowsPerTable":   m.cfg.RowsPerTable,
			"denseDim":       m.cfg.DenseDim,
			"tableBytes":     m.cfg.TableBytes(),
			"deviceBatch":    m.shards[0].dev.NBatch(),
			"shards":         len(m.shards),
			"maxBatch":       m.maxBatch,
			"weight":         st.Weight,
			"submitted":      st.Submitted,
			"rejected":       st.Rejected,
			"failed":         st.Failed,
			"shardFaults":    st.Pool.Faults,
			"waited":         st.Waited,
			"requests":       st.Pool.Requests,
			"inferences":     st.Pool.Inferences,
			"deviceBatches":  st.Pool.Batches,
			"meanBatch":      st.Pool.MeanBatch,
			"meanSimLatency": st.MeanLatency.String(),
			"maxSimLatency":  st.MaxLatency.String(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"models":       out,
		"defaultModel": s.def.name,
		"hostBudget":   s.router.Budget(),
	})
}

func (s *server) handleQPS(w http.ResponseWriter, r *http.Request) {
	m, err := s.resolve(r.URL.Query().Get("model"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	batch := 1
	if b := r.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v < 1 || v > 4096 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch must be in [1,4096]"})
			return
		}
		batch = v
	}
	// SteadyStateQPS and Latency are pure functions of the configuration;
	// no shard state is involved.
	per := m.shards[0].dev.SteadyStateQPS(batch)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"model":          m.name,
		"batch":          batch,
		"shards":         len(m.shards),
		"steadyStateQPS": per,
		"aggregateQPS":   per * float64(len(m.shards)),
		"batchLatency":   m.shards[0].dev.Latency(batch).String(),
	})
}

// inferRequest is /infer's body. Two forms, optionally naming a model:
//
//	{"model": "ctr", "batch": N}      count-only; the server synthesises inputs
//	{"model": "ctr",
//	 "sparse": [[[i,...],...],...],   explicit payload: sparse[i][t] lists
//	 "dense": [[f,...],...]}          table t's lookups for inference i;
//	                                  dense is optional (zero vectors if absent)
//
// An absent model field addresses the default (first configured) model.
type inferRequest struct {
	Model  string         `json:"model"`
	Batch  int            `json:"batch"`
	Sparse [][][]int64    `json:"sparse"`
	Dense  []rmssd.Vector `json:"dense"`
}

// maxInferBatch caps one request's inference count.
const maxInferBatch = 256

// validatePayload checks an explicit request against the hosted model's
// shape: every inference must carry cfg.Tables tables of cfg.Lookups
// in-range indices, and dense vectors (when present) must be DenseDim wide.
func validatePayload(cfg rmssd.ModelConfig, req serving.Request) error {
	for i, inf := range req.Sparse {
		if len(inf) != cfg.Tables {
			return fmt.Errorf("inference %d: %d tables, want %d", i, len(inf), cfg.Tables)
		}
		for t, idx := range inf {
			if len(idx) != cfg.Lookups {
				return fmt.Errorf("inference %d table %d: %d lookups, want %d", i, t, len(idx), cfg.Lookups)
			}
			for _, row := range idx {
				if row < 0 || row >= cfg.RowsPerTable {
					return fmt.Errorf("inference %d table %d: row %d outside [0,%d)", i, t, row, cfg.RowsPerTable)
				}
			}
		}
		if req.Dense != nil && len(req.Dense[i]) != cfg.DenseDim {
			return fmt.Errorf("inference %d: dense dim %d, want %d", i, len(req.Dense[i]), cfg.DenseDim)
		}
	}
	return nil
}

// buildInferRequest validates the decoded body against the addressed
// model's shape and converts it to a serving request. Shared by the HTTP
// handler and the fuzz harness.
func (s *server) buildInferRequest(req inferRequest) (*hostedModel, serving.Request, error) {
	m, err := s.resolve(req.Model)
	if err != nil {
		return nil, serving.Request{}, err
	}
	switch {
	case len(req.Sparse) > 0:
		if req.Batch > 0 && req.Batch != len(req.Sparse) {
			return nil, serving.Request{}, fmt.Errorf("batch %d does not match %d sparse inferences", req.Batch, len(req.Sparse))
		}
		if len(req.Sparse) > maxInferBatch {
			return nil, serving.Request{}, fmt.Errorf("batch too large (max %d)", maxInferBatch)
		}
		if req.Dense != nil && len(req.Dense) != len(req.Sparse) {
			return nil, serving.Request{}, fmt.Errorf("%d dense vectors for %d inferences", len(req.Dense), len(req.Sparse))
		}
		sreq := serving.Request{Sparse: req.Sparse, Dense: req.Dense}
		if err := validatePayload(m.cfg, sreq); err != nil {
			return nil, serving.Request{}, err
		}
		return m, sreq, nil
	case req.Dense != nil:
		return nil, serving.Request{}, errors.New("dense payload without sparse indices")
	default:
		if req.Batch <= 0 {
			req.Batch = 1
		}
		if req.Batch > maxInferBatch {
			return nil, serving.Request{}, fmt.Errorf("batch too large (max %d)", maxInferBatch)
		}
		return m, serving.Request{N: req.Batch}, nil
	}
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	m, sreq, err := s.buildInferRequest(req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, serving.ErrUnknownModel) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	resp, err := s.router.Submit(r.Context(), m.name, sreq)
	if err != nil {
		writeJSON(w, inferStatus(err), map[string]string{"error": err.Error()})
		return
	}
	bd, _ := resp.Meta.(rmssd.Breakdown)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"model":             m.name,
		"predictions":       resp.Preds,
		"simulatedLatency":  resp.Latency.String(),
		"shard":             resp.Shard,
		"coalescedBatch":    resp.BatchSize,
		"coalescedRequests": resp.Coalesced,
		"breakdown": map[string]string{
			"send": bd.Send.String(),
			"emb":  bd.Emb.String(),
			"bot":  bd.Bot.String(),
			"top":  bd.Top.String(),
			"read": bd.Read.String(),
		},
	})
}

// inferStatus maps a submission error onto an HTTP status: malformed
// payloads are the client's fault (400), transient conditions — shutdown,
// cancellation, an injected read fault the client may retry — are 503, and
// a recovered backend panic is a genuine server error (500).
func inferStatus(err error) int {
	var fault *serving.ShardFaultError
	switch {
	case errors.Is(err, rmssd.ErrShapeMismatch), errors.Is(err, rmssd.ErrRowOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, serving.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, serving.ErrPoolClosed), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, rmssd.ErrReadFault):
		return http.StatusServiceUnavailable
	case errors.As(err, &fault):
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		vectorReads, pageReads, bytesTransferred, inferences int64
		requests, batches                                    int64
		lookups, dedupHits                                   int64
		cacheHits, cacheMisses, cacheEvictions               int64
		readFaults, eccRetries, uncorrectable                int64
		shardFaults, failedReqs                              int64
		observedQPS                                          float64
		perShard                                             []map[string]interface{}
	)
	for _, m := range s.models {
		lk, ev, _ := m.localityStats()
		lookups += lk.Lookups
		dedupHits += lk.DedupHits
		cacheHits += ev.Hits
		cacheMisses += ev.Misses
		cacheEvictions += ev.Evictions
		for _, sh := range m.shards {
			fs, inf, now := sh.snapshot()
			vectorReads += fs.VectorReads
			pageReads += fs.PageReads
			bytesTransferred += fs.BytesTransferred
			readFaults += fs.ReadFaults
			eccRetries += fs.ECCRetries
			uncorrectable += fs.Uncorrectable
			inferences += inf
			var qps float64
			if now > 0 {
				qps = float64(inf) / now.Seconds()
			}
			observedQPS += qps
			entry := map[string]interface{}{
				"model":      m.name,
				"shard":      sh.id,
				"inferences": inf,
				"simClock":   now.String(),
				"qps":        qps,
			}
			if a := sh.array(); a != nil {
				sh.mu.Lock()
				ast := a.Stats()
				sh.mu.Unlock()
				entry["array"] = map[string]interface{}{
					"devices":       ast.Devices,
					"partition":     string(ast.Partition),
					"scattered":     ast.Scattered,
					"partials":      ast.Partials,
					"transfers":     ast.Transfers,
					"transferBytes": ast.TransferBytes,
				}
			}
			perShard = append(perShard, entry)
		}
		ps := m.pool.Stats()
		requests += ps.Requests
		batches += ps.Batches
		shardFaults += ps.Faults
		failedReqs += ps.Failed
	}
	var meanBatch float64
	if batches > 0 {
		meanBatch = float64(inferences) / float64(batches)
	}
	var cacheHitRatio float64
	if probes := cacheHits + cacheMisses; probes > 0 {
		cacheHitRatio = float64(cacheHits) / float64(probes)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"vectorReads":      vectorReads,
		"pageReads":        pageReads,
		"bytesTransferred": bytesTransferred,
		"inferences":       inferences,
		"observedQPS":      observedQPS,
		"requests":         requests,
		"deviceBatches":    batches,
		"meanBatch":        meanBatch,
		"lookups":          lookups,
		"dedupHits":        dedupHits,
		"evCacheHits":      cacheHits,
		"evCacheMisses":    cacheMisses,
		"evCacheEvictions": cacheEvictions,
		"evCacheHitRatio":  cacheHitRatio,
		"readFaults":       readFaults,
		"eccRetries":       eccRetries,
		"uncorrectable":    uncorrectable,
		"shardFaults":      shardFaults,
		"failedRequests":   failedReqs,
		"inFlight":         s.router.InFlight(),
		"shards":           perShard,
	})
}
