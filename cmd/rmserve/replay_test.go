package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rmssd"
	"rmssd/internal/serving"
)

// TestExplicitInferMatchesDevice is the acceptance check for the
// trace-driven API: a request with explicit sparse indices must return
// predictions computed from exactly those indices — bit-identical to a
// direct Device.InferBatch call with the same inputs.
func TestExplicitInferMatchesDevice(t *testing.T) {
	s := testServer(t, 1)

	// Draw inputs from an independent generator (these are the "client's"
	// indices; the server has never seen this stream).
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: s.def.cfg.Tables, Rows: s.def.cfg.RowsPerTable, Lookups: s.def.cfg.Lookups, Seed: 99,
	})
	const batch = 3
	sparses := gen.Batch(batch)
	denses := make([]rmssd.Vector, batch)
	for i := range denses {
		denses[i] = gen.DenseInput(i, s.def.cfg.DenseDim)
	}

	// Reference: a fresh device of the same config serves the same inputs.
	ref := rmssd.MustNewDevice(s.def.cfg, rmssd.DeviceOptions{})
	want, _, _, err := ref.InferBatch(0, denses, sparses)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(map[string]interface{}{"sparse": sparses, "dense": denses})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float32 `json:"predictions"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != batch {
		t.Fatalf("%d predictions, want %d", len(resp.Predictions), batch)
	}
	for i, p := range resp.Predictions {
		if math.Float32bits(p) != math.Float32bits(want[i]) {
			t.Fatalf("prediction %d = %v, want %v (server did not serve the client's indices)", i, p, want[i])
		}
	}
}

// TestExplicitInferValidation rejects malformed payloads instead of
// panicking deep inside the device.
func TestExplicitInferValidation(t *testing.T) {
	s := testServer(t, 1)
	cfg := s.def.cfg
	goodInf := func() [][]int64 {
		inf := make([][]int64, cfg.Tables)
		for t := range inf {
			inf[t] = make([]int64, cfg.Lookups)
		}
		return inf
	}
	cases := []struct {
		name string
		body map[string]interface{}
	}{
		{"wrong tables", map[string]interface{}{"sparse": [][][]int64{goodInf()[:1]}}},
		{"wrong lookups", map[string]interface{}{"sparse": func() [][][]int64 {
			inf := goodInf()
			inf[0] = inf[0][:1]
			return [][][]int64{inf}
		}()}},
		{"row out of range", map[string]interface{}{"sparse": func() [][][]int64 {
			inf := goodInf()
			inf[0][0] = cfg.RowsPerTable
			return [][][]int64{inf}
		}()}},
		{"negative row", map[string]interface{}{"sparse": func() [][][]int64 {
			inf := goodInf()
			inf[0][0] = -1
			return [][][]int64{inf}
		}()}},
		{"batch mismatch", map[string]interface{}{"batch": 2, "sparse": [][][]int64{goodInf()}}},
		{"dense mismatch", map[string]interface{}{"sparse": [][][]int64{goodInf()},
			"dense": [][]float32{make([]float32, cfg.DenseDim+1)}}},
		{"dense count mismatch", map[string]interface{}{"sparse": [][][]int64{goodInf()},
			"dense": [][]float32{make([]float32, cfg.DenseDim), make([]float32, cfg.DenseDim)}}},
		{"dense without sparse", map[string]interface{}{"dense": [][]float32{make([]float32, cfg.DenseDim)}}},
	}
	for _, c := range cases {
		body, err := json.Marshal(c.body)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, rec.Code, rec.Body.String())
		}
	}
	// A valid explicit request with no dense vectors is accepted.
	body, err := json.Marshal(map[string]interface{}{"sparse": [][][]int64{goodInf()}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("valid sparse-only request: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestPayloadPathMatchesCountOnly is the differential check: serving
// explicit payloads drawn from a generator stream must be byte-identical to
// the count-only path consuming the same stream server-side.
func TestPayloadPathMatchesCountOnly(t *testing.T) {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	const (
		seed  = 7
		reqs  = 6
		batch = 2
	)
	newS := func() *server {
		s, err := newSingleServer(cfg, hostOptions{shards: 1, seed: seed, maxBatch: 8, queue: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.close)
		return s
	}

	// Server A: count-only requests; the shard synthesises inputs from its
	// own generator (seeded seed+0*0x9e37 = seed).
	a := newS()
	var aPreds []float32
	for i := 0; i < reqs; i++ {
		resp, err := a.def.pool.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		aPreds = append(aPreds, resp.Preds...)
	}

	// Server B: explicit payloads drawn client-side from an identically
	// seeded generator, submitted sequentially (no coalescing, same batch
	// boundaries).
	b := newS()
	src, err := serving.NewGeneratorSource(
		rmssd.MustNewTrace(rmssd.TraceConfig{
			Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: seed,
		}), batch, cfg.DenseDim)
	if err != nil {
		t.Fatal(err)
	}
	var bPreds []float32
	for i := 0; i < reqs; i++ {
		req, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := b.def.pool.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		bPreds = append(bPreds, resp.Preds...)
	}

	if len(aPreds) != reqs*batch || len(bPreds) != reqs*batch {
		t.Fatalf("preds: %d vs %d", len(aPreds), len(bPreds))
	}
	for i := range aPreds {
		if math.Float32bits(aPreds[i]) != math.Float32bits(bPreds[i]) {
			t.Fatalf("pred %d: count-only %v != payload %v", i, aPreds[i], bPreds[i])
		}
	}
	// And the simulated device state advanced identically.
	_, aInf, aNow := a.def.shards[0].snapshot()
	_, bInf, bNow := b.def.shards[0].snapshot()
	if aInf != bInf || aNow != bNow {
		t.Fatalf("device divergence: %d@%v vs %d@%v", aInf, aNow, bInf, bNow)
	}
}

// TestReplaySyntheticDeterministic: the in-process trace replay emits an
// identical report for identical seed and shard count.
func TestReplaySyntheticDeterministic(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 60, ReqBatch: 2, Seed: 5}
	run := func() serving.ReplayResult {
		s := testServer(t, 2)
		res, err := s.replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Requests != 60 || a.Inferences != 120 {
		t.Fatalf("res = %+v", a)
	}
	if a.P50 <= 0 || a.P99 < a.P50 || a.PredCheck == 0 {
		t.Fatalf("res = %+v", a)
	}
	if len(a.PerShard) != 2 || a.PerShard[0]+a.PerShard[1] != 120 {
		t.Fatalf("per-shard = %v", a.PerShard)
	}
}

// TestReplayCriteo: a Criteo-format TSV streams through the pool and the
// printed report carries the latency and coalescing lines.
func TestReplayCriteo(t *testing.T) {
	s := testServer(t, 2)
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: s.def.cfg.Tables, Rows: s.def.cfg.RowsPerTable, Lookups: s.def.cfg.Lookups, Seed: 2,
	})
	tsv := filepath.Join(t.TempDir(), "criteo.tsv")
	f, err := os.Create(tsv)
	if err != nil {
		t.Fatal(err)
	}
	// Enough records for 5 full inferences at `Lookups` records each.
	records := 5 * s.def.cfg.Lookups
	if err := rmssd.SynthesizeCriteoTSV(f, records, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rc := replayConfig{Mode: "criteo", CriteoIn: tsv, Rate: 100000, Requests: 0, ReqBatch: 1, Seed: 5}
	if err := s.runReplay(rc, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sim latency:", "p50=", "p99=", "coalescing:", "per shard:", "pred check:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	wantInf := records / s.def.cfg.Lookups
	if !strings.Contains(out, fmt.Sprintf("%d inferences", wantInf)) {
		t.Fatalf("report does not account for %d inferences:\n%s", wantInf, out)
	}
}

// TestReplayErrors: bad replay configurations fail cleanly.
func TestReplayErrors(t *testing.T) {
	s := testServer(t, 1)
	if _, err := s.replay(replayConfig{Mode: "nope", Rate: 1, Requests: 1, ReqBatch: 1}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := s.replay(replayConfig{Mode: "criteo", Rate: 1, Requests: 1, ReqBatch: 1}); err == nil {
		t.Fatal("criteo without -criteo-in must error")
	}
	if _, err := s.replay(replayConfig{Mode: "synthetic", Rate: 1, Requests: 0, ReqBatch: 1}); err == nil {
		t.Fatal("unbounded synthetic replay must error")
	}
}

// TestReplayOutOfRangeTraceFailsTyped: a trace addressed to a larger table
// than the hosted model covers must fail exactly the malformed requests
// with the typed range error — per request, without wedging the pool or
// aborting the replay.
func TestReplayOutOfRangeTraceFailsTyped(t *testing.T) {
	s := testServer(t, 2)
	cfg := s.def.cfg

	// Direct submission first: the typed error, and batch-mates unharmed.
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 77,
	})
	bad := gen.Batch(1)
	bad[0][0][0] = cfg.RowsPerTable + 3
	_, err := s.def.pool.Submit(context.Background(), serving.Request{Sparse: bad})
	if !errors.Is(err, rmssd.ErrRowOutOfRange) {
		t.Fatalf("err = %v, want ErrRowOutOfRange", err)
	}
	resp, err := s.def.pool.Submit(context.Background(), serving.Request{Sparse: gen.Batch(1)})
	if err != nil || len(resp.Preds) != 1 {
		t.Fatalf("in-range request after a rejected one: %+v %v", resp, err)
	}

	// A whole replay of the oversized trace: every request carries some
	// out-of-range row (4x the row space, hundreds of draws per request),
	// every one fails, and the replay still completes its full profile.
	wide := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable * 4, Lookups: cfg.Lookups, Seed: 7,
	})
	src, err := serving.NewGeneratorSource(wide, 1, cfg.DenseDim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := serving.Replay(s.def.backends(), serving.ReplayConfig{
		Rate: 100000, MaxBatch: s.def.maxBatch, Requests: 30, Seed: 7,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 || res.Failed != 30 || res.Inferences != 0 {
		t.Fatalf("res = %+v, want all 30 requests failed and none inferred", res)
	}
	// The shard devices did no work for rejected payloads: across the whole
	// test only the single in-range submission above reached a device.
	var total int64
	for _, sh := range s.def.shards {
		_, inf, _ := sh.snapshot()
		total += inf
	}
	if total != 1 {
		t.Fatalf("devices ran %d inferences, want 1 (rejected payloads must not reach flash)", total)
	}
}
