package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rmssd/internal/obs"
)

// TestMetricsDisabledByDefault: without -metrics the endpoint answers 404
// and the server carries no registry — the off state costs nothing.
func TestMetricsDisabledByDefault(t *testing.T) {
	s := testServer(t, 1)
	if s.metrics != nil {
		t.Fatal("registry allocated without -metrics")
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "-metrics") {
		t.Fatalf("404 body does not point at the flag: %s", rec.Body.String())
	}
}

// TestMetricsEndpoint: with metrics enabled, served traffic shows up both
// in the span-driven families and the scrape-time model mirrors, rendered
// as Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, 2)
	s.enableMetrics()
	if _, err := s.def.pool.Infer(3); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE rmssd_batches_total counter",
		"# TYPE rmssd_stage_sim_seconds histogram",
		`rmssd_model_inferences_total{model="RMC1"} 3`,
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition lacks %q:\n%s", want, body)
		}
	}
	// Two scrapes with no traffic in between render identical bytes.
	rec2 := httptest.NewRecorder()
	s.handleMetrics(rec2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if body != rec2.Body.String() {
		t.Fatal("idle rescrape changed the exposition bytes")
	}
}

// TestReplayReportTracedDifferential: tracing adds report sections and a
// JSONL artifact but never changes the replayed numbers, and the traced
// report is itself deterministic.
func TestReplayReportTracedDifferential(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 60, ReqBatch: 2, Seed: 5}
	run := func(traced bool, traceOut string) (string, string) {
		s := testServer(t, 2)
		c := rc
		if traced {
			c.Tracer = obs.NewTracer(obs.NewRegistry())
			c.TraceOut = traceOut
		}
		var sb strings.Builder
		if err := s.runReplay(c, &sb); err != nil {
			t.Fatal(err)
		}
		// Strip the wall-clock line: it is the one intentionally
		// host-dependent line of the report.
		var kept []string
		for _, line := range strings.Split(sb.String(), "\n") {
			if !strings.HasPrefix(line, "wall clock:") {
				kept = append(kept, line)
			}
		}
		report := strings.Join(kept, "\n")
		var trace string
		if traceOut != "" {
			b, err := os.ReadFile(traceOut)
			if err != nil {
				t.Fatal(err)
			}
			trace = string(b)
		}
		return report, trace
	}

	plain, _ := run(false, "")
	out1 := filepath.Join(t.TempDir(), "trace1.jsonl")
	out2 := filepath.Join(t.TempDir(), "trace2.jsonl")
	traced1, jsonl1 := run(true, out1)
	traced2, jsonl2 := run(true, out2)

	if traced1 != traced2 || jsonl1 != jsonl2 {
		t.Fatal("traced replay not byte-deterministic across reruns")
	}
	if !strings.Contains(traced1, "stages:") || !strings.Contains(traced1, "cycles") {
		t.Fatalf("traced report lacks the stage table:\n%s", traced1)
	}
	if strings.Contains(plain, "stages:") {
		t.Fatalf("untraced report gained a stage table:\n%s", plain)
	}
	// Every line of the untraced report reappears verbatim in the traced
	// one: tracing only appends.
	for _, line := range strings.Split(plain, "\n") {
		if line != "" && !strings.Contains(traced1, line) {
			t.Fatalf("traced report changed line %q:\n%s", line, traced1)
		}
	}
	lines := strings.Split(strings.TrimSpace(jsonl1), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], `"schema":1`) {
		t.Fatalf("trace artifact malformed:\n%s", jsonl1)
	}
}

// TestReplayTracerMatchesDirect: the replay numbers with a tracer attached
// equal the numbers without one (server-level differential, complementing
// the serving-layer suite).
func TestReplayTracerMatchesDirect(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 40, ReqBatch: 2, Seed: 7}
	s1 := testServer(t, 2)
	plain, err := s1.replay(rc)
	if err != nil {
		t.Fatal(err)
	}
	s2 := testServer(t, 2)
	c := rc
	c.Tracer = obs.NewTracer(obs.NewRegistry())
	traced, err := s2.replay(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracer perturbed the replay:\n%+v\n%+v", plain, traced)
	}
	if got := c.Tracer.Breakdown(s2.def.name).Requests; got != int64(traced.Requests) {
		t.Fatalf("trace saw %d requests, replay served %d", got, traced.Requests)
	}
}

// TestMountPprof: the -pprof mux exposes the index handler.
func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	mountPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index missing profiles")
	}
}
