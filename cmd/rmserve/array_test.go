package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"rmssd"
	"rmssd/internal/obs"
	"rmssd/internal/serving"
)

// arrayTestServer hosts RMC1 with every shard backed by a multi-device
// array.
func arrayTestServer(t *testing.T, shards, devices int, partition string) *server {
	t.Helper()
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	s, err := newSingleServer(cfg, hostOptions{
		shards: shards, seed: 1, maxBatch: 8, queue: 64,
		arrayDevices: devices, partition: partition,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.close)
	return s
}

// An explicit payload served through an array-backed server must return
// predictions bit-identical to a direct Array.InferBatch with the same
// inputs — the HTTP layer adds nothing to the numerics.
func TestArrayExplicitInferMatchesArray(t *testing.T) {
	s := arrayTestServer(t, 1, 2, "hash")
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: s.def.cfg.Tables, Rows: s.def.cfg.RowsPerTable, Lookups: s.def.cfg.Lookups, Seed: 99,
	})
	const batch = 3
	sparses := gen.Batch(batch)
	denses := make([]rmssd.Vector, batch)
	for i := range denses {
		denses[i] = gen.DenseInput(i, s.def.cfg.DenseDim)
	}
	ref, err := rmssd.NewArray(s.def.cfg, rmssd.DeviceOptions{ArrayDevices: 2, Partition: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := ref.InferBatch(0, denses, sparses)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(map[string]interface{}{"sparse": sparses, "dense": denses})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.handleInfer(rec, httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Predictions []float32 `json:"predictions"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != batch {
		t.Fatalf("predictions = %v", resp.Predictions)
	}
	for i := range want {
		if resp.Predictions[i] != want[i] {
			t.Fatalf("pred %d: server %v, array %v", i, resp.Predictions[i], want[i])
		}
	}
}

// The /info and /stats surfaces expose the array configuration and live
// scatter/gather counters; array-free servers keep the historical shape.
func TestArrayInfoAndStats(t *testing.T) {
	s := arrayTestServer(t, 2, 4, "range")
	rec := httptest.NewRecorder()
	s.handleInfo(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	var info map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info["arrayDevices"].(float64) != 4 || info["partition"] != "range" {
		t.Fatalf("info = %v", info)
	}

	if _, err := s.def.pool.Infer(5); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Inferences int64 `json:"inferences"`
		Shards     []struct {
			Shard int `json:"shard"`
			Array *struct {
				Devices       int     `json:"devices"`
				Partition     string  `json:"partition"`
				Scattered     []int64 `json:"scattered"`
				Partials      int64   `json:"partials"`
				Transfers     int64   `json:"transfers"`
				TransferBytes int64   `json:"transferBytes"`
			} `json:"array"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inferences != 5 || len(stats.Shards) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	var scattered int64
	for _, sh := range stats.Shards {
		if sh.Array == nil {
			t.Fatalf("shard %d missing array counters", sh.Shard)
		}
		if sh.Array.Devices != 4 || sh.Array.Partition != "range" || len(sh.Array.Scattered) != 4 {
			t.Fatalf("shard %d array = %+v", sh.Shard, sh.Array)
		}
		for _, n := range sh.Array.Scattered {
			scattered += n
		}
	}
	if want := int64(5 * s.def.cfg.Tables * s.def.cfg.Lookups); scattered != want {
		t.Fatalf("scattered %d lookups across shards, want %d", scattered, want)
	}

	// Array-free control: no array key anywhere.
	plain := testServer(t, 1)
	rec = httptest.NewRecorder()
	plain.handleInfo(rec, httptest.NewRequest(http.MethodGet, "/info", nil))
	var plainInfo map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&plainInfo); err != nil {
		t.Fatal(err)
	}
	if _, ok := plainInfo["arrayDevices"]; ok {
		t.Fatal("plain server reports arrayDevices")
	}
	rec = httptest.NewRecorder()
	plain.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if strings.Contains(rec.Body.String(), `"array"`) {
		t.Fatal("plain server reports array counters in /stats")
	}
}

// Replay over an array-backed pool: the full report is byte-identical
// across reruns and carries the array: line; array-free replays keep their
// historical bytes.
func TestArrayReplayDeterministic(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 60, ReqBatch: 2, Seed: 5}
	report := func(shards int) string {
		s := arrayTestServer(t, shards, 2, "hash")
		res, err := s.replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		formatReplayResult(&sb, res)
		formatArray(&sb, s.def)
		return sb.String()
	}
	rep := report(2)
	if rep != report(2) {
		t.Fatalf("array replay not deterministic:\n%s", rep)
	}
	if !strings.Contains(rep, "array:") || !strings.Contains(rep, "2 devices (hash)") {
		t.Fatalf("report missing array line:\n%s", rep)
	}

	// Array-free replays keep their historical report bytes: no array line.
	s := testServer(t, 1)
	res, err := s.replay(rc)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	formatReplayResult(&sb, res)
	formatArray(&sb, s.def)
	if strings.Contains(sb.String(), "array:") {
		t.Fatalf("plain replay grew an array line:\n%s", sb.String())
	}
}

// A request's predictions are a pure function of its payload: serving the
// same explicit inputs through array-backed pools of 1, 2 and 4 shards
// returns bit-identical predictions — the shard count routes work, it never
// touches the numbers.
func TestArrayShardCountPredInvariance(t *testing.T) {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 55,
	})
	const requests = 8
	payloads := make([]serving.Request, requests)
	cursor := 0
	for r := range payloads {
		sparses := gen.Batch(2)
		denses := make([]rmssd.Vector, 2)
		for i := range denses {
			denses[i] = gen.DenseInput(cursor, cfg.DenseDim)
			cursor++
		}
		payloads[r] = serving.Request{Sparse: sparses, Dense: denses}
	}
	serve := func(shards int) [][]float32 {
		s := arrayTestServer(t, shards, 2, "hash")
		out := make([][]float32, requests)
		for r, req := range payloads {
			resp, err := s.def.pool.Submit(context.Background(), req)
			if err != nil {
				t.Fatalf("%d shards, request %d: %v", shards, r, err)
			}
			out[r] = resp.Preds
		}
		return out
	}
	base := serve(1)
	for _, shards := range []int{2, 4} {
		got := serve(shards)
		for r := range base {
			if len(got[r]) != len(base[r]) {
				t.Fatalf("%d shards: request %d pred count %d vs %d", shards, r, len(got[r]), len(base[r]))
			}
			for i := range base[r] {
				if got[r][i] != base[r][i] {
					t.Fatalf("%d shards: request %d pred %d = %v, 1 shard = %v",
						shards, r, i, got[r][i], base[r][i])
				}
			}
		}
	}
}

// A traced array replay joins every member's span into the batch records:
// the array field carries one span per active member in index order, the
// top member's span doubles as the batch device span, and tracing does not
// change the replayed numbers.
func TestArrayReplayTraced(t *testing.T) {
	rc := replayConfig{Mode: "synthetic", Rate: 100000, Requests: 40, ReqBatch: 2, Seed: 7}
	plain := func() serving.ReplayResult {
		s := arrayTestServer(t, 2, 2, "hash")
		res, err := s.replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	s := arrayTestServer(t, 2, 2, "hash")
	trc := rc
	trc.Tracer = obs.NewTracer(obs.NewRegistry())
	traced, err := s.replay(trc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PredCheck != traced.PredCheck || plain.P99 != traced.P99 || plain.Elapsed != traced.Elapsed {
		t.Fatalf("tracing changed the replay: %+v vs %+v", plain, traced)
	}
	recs := trc.Tracer.Records()
	if len(recs) == 0 {
		t.Fatal("no batch records traced")
	}
	for _, r := range recs {
		if len(r.Array) == 0 {
			t.Fatalf("batch record without member spans: %+v", r)
		}
		for i, m := range r.Array {
			if i > 0 && r.Array[i-1].DeviceIndex >= m.DeviceIndex {
				t.Fatalf("member spans out of order: %+v", r.Array)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("member %d span: %v", m.DeviceIndex, err)
			}
		}
		if r.Device == nil {
			t.Fatalf("batch record without device span: %+v", r)
		}
		// The batch's device span is the top member's (member 0), which
		// covers the pipeline end to end.
		if r.Array[0].DeviceIndex != 0 {
			t.Fatalf("top member span missing: %+v", r.Array)
		}
		if !reflect.DeepEqual(*r.Device, r.Array[0].DeviceSpan) {
			t.Fatalf("device span is not the top member's: %+v vs %+v", *r.Device, r.Array[0].DeviceSpan)
		}
	}
}

// The -models file accepts per-model arrayDevices/partition keys and builds
// array-backed shards from them; malformed array declarations fail loudly.
func TestArrayModelsConfig(t *testing.T) {
	mc, err := parseModelsConfig(strings.NewReader(`{"models": [
		{"name": "big", "model": "RMC1", "tableMB": 16, "arrayDevices": 2, "partition": "hash"},
		{"name": "small", "model": "RMC2", "tableMB": 16}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	hosted, err := mc.build(1)
	if err != nil {
		t.Fatal(err)
	}
	if a := hosted[0].shards[0].array(); a == nil || a.Layout().Devices() != 2 {
		t.Fatalf("big not array-backed: %v", hosted[0].shards[0].dev)
	}
	if a := hosted[1].shards[0].array(); a != nil {
		t.Fatal("small unexpectedly array-backed")
	}

	for name, doc := range map[string]string{
		"partition without array": `{"models": [{"model": "RMC1", "partition": "hash"}]}`,
		"unknown partition":       `{"models": [{"model": "RMC1", "arrayDevices": 2, "partition": "modulo"}]}`,
		"negative devices":        `{"models": [{"model": "RMC1", "arrayDevices": -1}]}`,
		"too many devices":        `{"models": [{"model": "RMC1", "arrayDevices": 65}]}`,
	} {
		if _, err := parseModelsConfig(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// The host-option path guards too (covers the -partition flag).
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(16 << 20)
	if _, err := newSingleServer(cfg, hostOptions{shards: 1, partition: "hash"}); err == nil {
		t.Fatal("partition without arrayDevices accepted by newHostedModel")
	}
}

// Array-backed metrics label every span family by member device.
func TestArrayMetricsPerDevice(t *testing.T) {
	s := arrayTestServer(t, 1, 2, "range")
	s.enableMetrics()
	if _, err := s.def.pool.Infer(3); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `device="0"`) || !strings.Contains(body, `device="1"`) {
		t.Fatalf("metrics missing per-device labels:\n%s", body)
	}
}
