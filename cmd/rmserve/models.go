package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rmssd"
)

// Multi-model configuration: `rmserve -models config.json` hosts several
// heterogeneous replicas on one server, each with its own devices, table
// budget and shard count. The file is a JSON object:
//
//	{"models": [
//	  {"name": "ctr",    "model": "RMC1", "tableMB": 256, "shards": 2, "weight": 2},
//	  {"name": "ranker", "model": "RMC3", "tableMB": 512, "shards": 1}
//	]}
//
// Unknown fields are rejected (strict decoding), so typos in a config file
// fail loudly instead of silently hosting a default.

// modelDecl declares one hosted model in the -models file.
type modelDecl struct {
	// Name is the serving name clients address (`model` field of /infer).
	// Defaults to the architecture name; must be unique across the file.
	Name string `json:"name"`
	// Model is the architecture: RMC1/RMC2/RMC3/NCF/WnD. Required.
	Model string `json:"model"`
	// TableMB is the embedding-table budget in MiB. Defaults to 256.
	TableMB int64 `json:"tableMB"`
	// Shards is the model's independent device count. Defaults to 1 in
	// multi-model mode (models already parallelise across each other).
	Shards int `json:"shards"`
	// MaxBatch caps the coalesced device batch; 0 means the device NBatch.
	MaxBatch int `json:"maxBatch"`
	// Queue bounds the per-shard submission queue. Defaults to 256.
	Queue int `json:"queue"`
	// Weight is the model's share of the shared host budget under WRR
	// admission. Defaults to 1.
	Weight int `json:"weight"`
	// Seed overrides the trace seed for this model's shards; 0 inherits
	// the global -seed flag.
	Seed uint64 `json:"seed"`
	// EVCacheMB budgets a device-DRAM embedding-vector cache per shard, in
	// MiB (0 = disabled). Hot vectors get served from controller DRAM;
	// predictions are byte-identical either way.
	EVCacheMB int64 `json:"evCacheMB"`
	// Dedup merges identical (table,row) lookups within one coalesced
	// device batch into a single vector read.
	Dedup bool `json:"dedup"`
	// FaultRate enables deterministic flash read-fault injection on this
	// model's devices: the per-attempt ECC failure probability, in [0,1).
	// 0 (the default) disables injection entirely.
	FaultRate float64 `json:"faultRate"`
	// FaultSeed seeds the fault sequence when FaultRate > 0.
	FaultSeed uint64 `json:"faultSeed"`
	// ArrayDevices > 1 backs each of this model's shards with a
	// multi-device array: the embedding tables are partitioned across that
	// many member SSDs. 0 or 1 hosts the whole model on one device.
	ArrayDevices int `json:"arrayDevices"`
	// Partition selects the array's row partitioning: "range" (contiguous
	// blocks) or "hash" (modular striping). Empty means "range"; only valid
	// with ArrayDevices > 1.
	Partition string `json:"partition"`
}

// modelsConfig is the top-level shape of the -models file.
type modelsConfig struct {
	Models []modelDecl `json:"models"`
}

// parseModelsConfig strictly decodes and validates a -models document.
func parseModelsConfig(r io.Reader) (modelsConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var mc modelsConfig
	if err := dec.Decode(&mc); err != nil {
		return modelsConfig{}, fmt.Errorf("rmserve: models config: %w", err)
	}
	// A second document in the stream is a malformed file, not extra input
	// to ignore.
	if dec.More() {
		return modelsConfig{}, fmt.Errorf("rmserve: models config: trailing data after document")
	}
	if len(mc.Models) == 0 {
		return modelsConfig{}, fmt.Errorf("rmserve: models config declares no models")
	}
	seen := make(map[string]bool, len(mc.Models))
	for i := range mc.Models {
		d := &mc.Models[i]
		if d.Model == "" {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d]: missing architecture (\"model\")", i)
		}
		if d.Name == "" {
			d.Name = d.Model
		}
		if seen[d.Name] {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d]: duplicate name %q", i, d.Name)
		}
		seen[d.Name] = true
		if d.TableMB == 0 {
			d.TableMB = 256
		}
		if d.TableMB < 0 || d.TableMB > 1<<20 {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): tableMB %d outside (0, 2^20]", i, d.Name, d.TableMB)
		}
		if d.Shards < 0 || d.MaxBatch < 0 || d.Queue < 0 || d.Weight < 0 {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): negative shard/batch/queue/weight", i, d.Name)
		}
		if d.EVCacheMB < 0 || d.EVCacheMB > 1<<20 {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): evCacheMB %d outside [0, 2^20]", i, d.Name, d.EVCacheMB)
		}
		if d.FaultRate < 0 || d.FaultRate >= 1 {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): faultRate %v outside [0,1)", i, d.Name, d.FaultRate)
		}
		if d.ArrayDevices < 0 || d.ArrayDevices > rmssd.MaxArrayDevices {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): arrayDevices %d outside [0,%d]", i, d.Name, d.ArrayDevices, rmssd.MaxArrayDevices)
		}
		switch d.Partition {
		case "", string(rmssd.PartitionRange), string(rmssd.PartitionHash):
		default:
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): unknown partition %q (want range or hash)", i, d.Name, d.Partition)
		}
		if d.Partition != "" && d.ArrayDevices <= 1 {
			return modelsConfig{}, fmt.Errorf("rmserve: models[%d] (%q): partition %q needs arrayDevices > 1", i, d.Name, d.Partition)
		}
		if d.Shards == 0 {
			d.Shards = 1
		}
		if d.Queue == 0 {
			d.Queue = 256
		}
		if d.Weight == 0 {
			d.Weight = 1
		}
	}
	return mc, nil
}

// loadModelsConfig reads and validates a -models file.
func loadModelsConfig(path string) (modelsConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return modelsConfig{}, err
	}
	defer f.Close() // read-only file; the parse result is what matters
	return parseModelsConfig(f)
}

// build materialises the declared models as hosted models: each declaration
// resolves its architecture, sizes its tables for the budget and gets its
// own device shards.
func (mc modelsConfig) build(globalSeed uint64) ([]*hostedModel, error) {
	hosted := make([]*hostedModel, 0, len(mc.Models))
	for i, d := range mc.Models {
		cfg, err := rmssd.ModelByName(d.Model)
		if err != nil {
			return nil, fmt.Errorf("rmserve: models[%d] (%q): %w", i, d.Name, err)
		}
		cfg.RowsPerTable = cfg.RowsForBudget(d.TableMB << 20)
		seed := d.Seed
		if seed == 0 {
			seed = globalSeed
		}
		m, err := newHostedModel(d.Name, cfg, hostOptions{
			shards: d.Shards, seed: seed, maxBatch: d.MaxBatch, queue: d.Queue,
			weight: d.Weight, evCacheMB: d.EVCacheMB, dedup: d.Dedup,
			faultRate: d.FaultRate, faultSeed: d.FaultSeed,
			arrayDevices: d.ArrayDevices, partition: d.Partition,
		})
		if err != nil {
			return nil, err
		}
		hosted = append(hosted, m)
	}
	return hosted, nil
}
