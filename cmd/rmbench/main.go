// Command rmbench regenerates the paper's tables and figures from the
// simulated systems.
//
// Usage:
//
//	rmbench -exp fig12                # one experiment
//	rmbench -exp all                  # everything, paper order
//	rmbench -list                     # list experiments
//	rmbench -exp fig2 -iters 200 -table-mb 1024
//
// Results are deterministic for a given seed; the simulated clock, not the
// wall clock, produces every number.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rmssd/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		iters    = flag.Int("iters", 0, "measured iterations per cell (0 = default)")
		tableMB  = flag.Int64("table-mb", 0, "embedding table budget in MiB (0 = paper's 30 GB)")
		seed     = flag.Uint64("seed", 0, "trace seed (0 = default)")
		k        = flag.Float64("k", 0, "trace locality K: 0.3 default; 0, 1, 2 per Fig. 14")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		parallel = flag.Int("parallel", 0, "worker goroutines for independent cells (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	opts := bench.Options{
		Iterations: *iters,
		TableBytes: *tableMB << 20,
		Seed:       *seed,
		LocalityK:  *k,
		Parallel:   *parallel,
	}

	run := func(e bench.Experiment) {
		start := time.Now() //lint:allow wallclock host-side progress report, not simulated time
		for _, t := range e.Run(opts) {
			if *csvOut {
				fmt.Printf("# %s\n", t.Title)
				if err := t.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println()
			} else if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		//lint:allow wallclock host-side progress report, not simulated time
		fmt.Fprintf(os.Stderr, "[%s done in %v wall time]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, err := bench.Find(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run(e)
}
