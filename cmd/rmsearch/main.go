// Command rmsearch runs the MLP Acceleration Engine's kernel search for a
// model and prints the Table V / Table VI style results: chosen batch size,
// per-layer kernels, stage times and FPGA resource consumption.
//
// Usage:
//
//	rmsearch -model RMC3
//	rmsearch -model RMC1 -part XC7A200T -design naive
package main

import (
	"flag"
	"fmt"
	"os"

	"rmssd/internal/engine"
	"rmssd/internal/model"
	"rmssd/internal/params"
)

func main() {
	var (
		modelName = flag.String("model", "RMC1", "model (RMC1/RMC2/RMC3/NCF/WnD)")
		partName  = flag.String("part", "XCVU9P", "FPGA part (XCVU9P or XC7A200T)")
		designStr = flag.String("design", "searched", "MLP mapping: naive, default or searched")
	)
	flag.Parse()

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var part params.FPGAPart
	switch *partName {
	case "XCVU9P":
		part = params.XCVU9P
	case "XC7A200T":
		part = params.XC7A200T
	default:
		fmt.Fprintf(os.Stderr, "unknown part %q (XCVU9P or XC7A200T)\n", *partName)
		os.Exit(1)
	}
	var design engine.Design
	switch *designStr {
	case "naive":
		design = engine.DesignNaive
	case "default":
		design = engine.DesignDefault
	case "searched":
		design = engine.DesignSearched
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q (naive, default, searched)\n", *designStr)
		os.Exit(1)
	}

	m := model.MustBuild(cfg)
	e, err := engine.NewMLPEngineGeo(m, design, part, params.NumChannels, params.DiesPerChannel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "search failed:", err)
		os.Exit(1)
	}

	fmt.Printf("model %s on %s, design %s\n", cfg.Name, part.Name, design)
	fmt.Printf("device batch size (Rule Three): %d\n\n", e.NBatch)
	fmt.Printf("%-8s %-7s %-6s %10s\n", "layer", "kernel", "where", "cycles")
	for _, k := range e.Kernels() {
		loc := "BRAM"
		if k.InDRAM {
			loc = "DRAM"
		}
		fmt.Printf("%-8s %2dx%-4d %-6s %10d\n", k.Layer, k.Kr, k.Kc, loc, k.Cycles)
	}
	emb, bot, top := e.StageTimes(e.NBatch, params.NumChannels, params.DiesPerChannel)
	fmt.Printf("\nstage times at batch %d: emb'=%v bot'=%v top'=%v\n", e.NBatch, emb, bot, top)
	fmt.Printf("steady-state device throughput: %.0f QPS\n", float64(e.NBatch)/emb.Seconds())

	r := e.Resources()
	fmt.Printf("\nresources: %s\n", r)
	fmt.Printf("fits %s: %v (utilization %.1f%%)\n", part.Name, r.FitsIn(part), 100*r.Utilization(part))
}
