// Command rmtrace generates synthetic embedding-lookup traces and prints
// Fig. 4-style access statistics.
//
// Usage:
//
//	rmtrace -model RMC1 -inferences 5000
//	rmtrace -rows 1000000 -tables 1 -lookups 80 -k 2 -dump 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rmssd/internal/model"
	"rmssd/internal/trace"
)

func main() {
	var (
		modelName  = flag.String("model", "RMC1", "built-in model whose shape to use (RMC1/RMC2/RMC3/NCF/WnD)")
		rows       = flag.Int64("rows", 0, "rows per table (0 = model default at 30 GB)")
		tables     = flag.Int("tables", 0, "number of tables (0 = model default)")
		lookups    = flag.Int("lookups", 0, "lookups per table (0 = model default)")
		inferences = flag.Int("inferences", 2000, "inferences to generate")
		k          = flag.Float64("k", 0.3, "locality K (0, 0.3, 1, 2)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		table      = flag.Int("table", 0, "table to analyse (-1 = all)")
		topK       = flag.Int("topk", 10000, "K for the top-K lookup share")
		dump       = flag.Int("dump", 0, "print the first N inferences' indices")
		criteoOut  = flag.String("criteo-out", "", "write N synthetic records in Kaggle Criteo TSV format to this file and exit")
		criteoIn   = flag.String("criteo-in", "", "analyse a Criteo-format TSV file instead of generating a trace")
	)
	flag.Parse()

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tc := trace.Config{
		Tables:  cfg.Tables,
		Rows:    cfg.RowsPerTable,
		Lookups: cfg.Lookups,
		Seed:    *seed,
	}
	if *tables > 0 {
		tc.Tables = *tables
	}
	if *rows > 0 {
		tc.Rows = *rows
	}
	if *lookups > 0 {
		tc.Lookups = *lookups
	}
	tc = tc.Default()
	if tc, err = tc.WithLocality(*k); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen, err := trace.NewGenerator(tc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *criteoOut != "" {
		f, err := os.Create(*criteoOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.SynthesizeCriteoTSV(f, *inferences, gen); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d Criteo-format records to %s\n", *inferences, *criteoOut)
		return
	}
	if *criteoIn != "" {
		// The Criteo format always has 26 categorical tables regardless of
		// the model shape; reject out-of-range columns instead of silently
		// wrapping them onto another table's statistics.
		if *table >= trace.CriteoTables || *table < -1 {
			fmt.Fprintf(os.Stderr, "rmtrace: -table %d out of range for Criteo input (want -1 for all tables, or 0..%d)\n",
				*table, trace.CriteoTables-1)
			os.Exit(1)
		}
		f, err := os.Open(*criteoIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		p, err := trace.NewCriteoParser(f, tc.Rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var flat []int64
		var records int
		for {
			rec, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			records++
			if *table < 0 {
				flat = append(flat, rec.Sparse...)
			} else {
				flat = append(flat, rec.Sparse[*table])
			}
		}
		stats := trace.Analyze(flat, *topK)
		fmt.Printf("file: %s, %d records\n", *criteoIn, records)
		fmt.Printf("total lookups:     %d\n", stats.TotalLookups)
		fmt.Printf("distinct indices:  %d\n", stats.TotalIndices)
		fmt.Printf("single-occurrence: %.2f%% of indices\n", 100*stats.SingleShare)
		fmt.Printf("top-%d share:      %.1f%% of lookups\n", *topK, 100*stats.TopKShare)
		return
	}

	if *table >= tc.Tables || *table < -1 {
		fmt.Fprintf(os.Stderr, "rmtrace: -table %d out of range (want -1 for all tables, or 0..%d)\n",
			*table, tc.Tables-1)
		os.Exit(1)
	}
	batch := gen.Batch(*inferences)
	for i := 0; i < *dump && i < len(batch); i++ {
		fmt.Printf("inference %d: %v\n", i, batch[i])
	}

	stats := trace.Analyze(trace.Flatten(batch, *table), *topK)
	fmt.Printf("config: tables=%d rows=%d lookups=%d hotMass=%.2f hotSet=%d zipf=%.2f\n",
		tc.Tables, tc.Rows, tc.Lookups, tc.HotMass, tc.HotSetSize, tc.ZipfS)
	fmt.Printf("total lookups:        %d\n", stats.TotalLookups)
	fmt.Printf("distinct indices:     %d\n", stats.TotalIndices)
	fmt.Printf("single-occurrence:    %.2f%% of indices (paper: 84.74%%)\n", 100*stats.SingleShare)
	fmt.Printf("top-%d share:         %.1f%% of lookups (paper: 59.2%% for top-10000)\n", *topK, 100*stats.TopKShare)
	fmt.Println("occurrence histogram (indices occurring exactly k times):")
	for kk, n := range stats.OccurrenceIndexCounts {
		fmt.Printf("  %2d: %d\n", kk+1, n)
	}
	fmt.Println("top-10 indices:")
	for i, ic := range stats.Top {
		fmt.Printf("  #%d index=%d count=%d (%.2f%%)\n", i+1, ic.Index, ic.Count,
			100*float64(ic.Count)/float64(stats.TotalLookups))
	}
}
