// Command rmlint runs rmssd's domain-aware static-analysis suite.
//
//	go run ./cmd/rmlint ./...
//	go run ./cmd/rmlint -analyzers wallclock,units ./internal/... (subtree)
//	go run ./cmd/rmlint -json ./... (one JSON diagnostic per line, for CI)
//	go run ./cmd/rmlint -list
//
// rmlint exits 0 when the tree is clean, 1 if any diagnostic survives
// //lint:allow filtering, and 2 on load/usage errors, making it suitable
// as a CI gate (see .github/workflows/ci.yml and `make check`). See
// internal/lint for the analyzer suite: wallclock (determinism), units
// (sim.Cycles vs time.Duration), errcheck (discarded errors), panicmsg
// (package-prefixed panics), mapiter (map iteration feeding order-
// sensitive sinks), goroutine (join/capture discipline in the concurrent
// core), locks (mutex copy/release/send-under-lock discipline) and
// allowaudit (stale //lint:allow directives).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rmssd/internal/lint"
)

// jsonDiagnostic is the machine-readable diagnostic shape: one object per
// line on stdout, stable field names, nothing else interleaved (the
// summary goes to stderr).
type jsonDiagnostic struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		rootDir   = flag.String("root", "", "module root (default: nearest go.mod upward from the working directory)")
		list      = flag.Bool("list", false, "list available analyzers and exit")
		asJSON    = flag.Bool("json", false, "emit one JSON diagnostic per line ({\"pos\",\"analyzer\",\"message\"}) instead of plain text")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmlint:", err)
			os.Exit(2)
		}
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, selected)
	for _, d := range diags {
		if *asJSON {
			line, err := json.Marshal(jsonDiagnostic{
				Pos:      fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rmlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(line))
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found upward from the working directory")
		}
		dir = parent
	}
}
