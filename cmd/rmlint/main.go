// Command rmlint runs rmssd's domain-aware static-analysis suite.
//
//	go run ./cmd/rmlint ./...
//	go run ./cmd/rmlint -analyzers wallclock,units ./internal/... (subtree)
//	go run ./cmd/rmlint -list
//
// rmlint exits non-zero if any diagnostic survives //lint:allow filtering,
// making it suitable as a CI gate (see .github/workflows/ci.yml and
// `make check`). See internal/lint for the analyzer suite: wallclock
// (determinism), units (sim.Cycles vs time.Duration), errcheck (discarded
// errors) and panicmsg (package-prefixed panics).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rmssd/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		rootDir   = flag.String("root", "", "module root (default: nearest go.mod upward from the working directory)")
		list      = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmlint:", err)
			os.Exit(2)
		}
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found upward from the working directory")
		}
		dir = parent
	}
}
