// Quickstart: build DLRM-RMC1, host it on a simulated RM-SSD, run one
// batch of inferences end to end and compare against the in-memory
// reference model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmssd"
)

func main() {
	// RMC1 with tables scaled to 256 MiB so the example starts instantly;
	// drop RowsPerTable override for the paper's 30 GB configuration.
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(256 << 20)
	fmt.Printf("model %s: %d tables x %d rows x dim %d (%d MiB), %d lookups/table\n",
		cfg.Name, cfg.Tables, cfg.RowsPerTable, cfg.EVDim,
		cfg.TableBytes()>>20, cfg.Lookups)

	// Build the device: tables are laid out on the simulated flash and
	// registered with the EV Translator; the kernel search maps the MLP
	// onto the FPGA.
	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	fmt.Printf("device ready: batch size %d chosen by kernel search\n\n", dev.NBatch())

	// Synthetic inputs with the paper's default 65% locality.
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables:  cfg.Tables,
		Rows:    cfg.RowsPerTable,
		Lookups: cfg.Lookups,
		Seed:    42,
	})

	const batch = 4
	denses := make([]rmssd.Vector, batch)
	for i := range denses {
		denses[i] = gen.DenseInput(i, cfg.DenseDim)
	}
	sparses := gen.Batch(batch)

	// Run the batch through the in-storage pipeline.
	outs, done, bd, err := dev.InferBatch(0, denses, sparses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CTR predictions (in-storage vs in-memory reference):")
	ref := dev.Model()
	for i, out := range outs {
		want := ref.Infer(denses[i], sparses[i])
		fmt.Printf("  inference %d: RM-SSD %.6f | reference %.6f | diff %+.1e\n",
			i, out, want, out-want)
	}

	fmt.Printf("\nsimulated batch latency: %v\n", done)
	fmt.Printf("  send inputs (MMIO+DMA): %v\n", bd.Send)
	fmt.Printf("  embedding stage (flash + Le kernel): %v\n", bd.Emb)
	fmt.Printf("  bottom MLP (overlapped with embedding): %v\n", bd.Bot)
	fmt.Printf("  top MLP: %v\n", bd.Top)
	fmt.Printf("  read outputs: %v\n", bd.Read)
	fmt.Printf("steady-state throughput at device batch %d: %.0f QPS\n",
		dev.NBatch(), dev.SteadyStateQPS(dev.NBatch()))

	st := dev.Device().Array().Stats()
	fmt.Printf("\nflash traffic: %d vector reads, %d bytes over the channel buses (zero page reads: no read amplification)\n",
		st.VectorReads, st.BytesTransferred)
}
