// Locality sweep (Fig. 14): RecSSD's throughput depends on how much of the
// lookup stream its host-side cache can capture; RM-SSD's does not, because
// the Embedding Lookup Engine reads every vector at vector granularity
// regardless of reuse.
//
//	go run ./examples/localitysweep
package main

import (
	"fmt"
	"time"

	"rmssd"
)

func main() {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(512 << 20)

	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	rmQPS := dev.SteadyStateQPS(4)

	fmt.Println("trace locality K -> vector-cache hit ratio (Fig. 14 presets):")
	fmt.Println("K=0 -> 80%, K=0.3 -> 65% (default), K=1 -> 45%, K=2 -> 30%")
	fmt.Println()
	fmt.Printf("%-5s %-10s %-12s %-12s %-10s\n", "K", "hit ratio", "RecSSD QPS", "RM-SSD QPS", "gap")

	const inferences = 60
	for _, k := range []float64{0, 0.3, 1, 2} {
		tc := rmssd.TraceConfig{
			Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 11,
		}
		tc = tc.Default()
		tc, err := tc.WithLocality(k)
		if err != nil {
			panic(err)
		}
		gen := rmssd.MustNewTrace(tc)

		env, err := rmssd.NewEnv(cfg, rmssd.DefaultGeometry())
		if err != nil {
			panic(err)
		}
		rec := rmssd.NewRecSSD(env)
		var now time.Duration
		// Warm the cache, then measure.
		for i := 0; i < inferences/2; i++ {
			done, _ := rec.InferTiming(now, gen.Inference())
			now = done
		}
		start := now
		for i := 0; i < inferences; i++ {
			done, _ := rec.InferTiming(now, gen.Inference())
			now = done
		}
		recQPS := float64(inferences) / (now - start).Seconds()

		fmt.Printf("%-5.1f %-10s %-12.0f %-12.0f %.1fx\n",
			k, fmt.Sprintf("%.0f%%", 100*tc.HotMass), recQPS, rmQPS, rmQPS/recQPS)
	}
	fmt.Println("\nRM-SSD's column is constant: in-storage vector-grained pooling is")
	fmt.Println("locality-blind, while RecSSD degrades as its host cache loses hits.")
}
