// MLP-dominated workloads: RMC3, NCF and WnD, where the MLP Acceleration
// Engine — not the Embedding Lookup Engine — supplies the speedup. Shows
// Rule Three's batch conversion (Fig. 12c) and the Fig. 15 result that the
// in-storage FPGA beats even the unlimited-DRAM host deployment.
//
//	go run ./examples/mlpdominated
package main

import (
	"fmt"

	"rmssd"
)

func main() {
	for _, mk := range []func() rmssd.ModelConfig{rmssd.RMC3, rmssd.NCF, rmssd.WnD} {
		cfg := mk()
		cfg.RowsPerTable = cfg.RowsForBudget(256 << 20)
		m, err := rmssd.BuildModel(cfg)
		if err != nil {
			panic(err)
		}

		fmt.Printf("=== %s: %.2f MB of MLP weights, %d lookups/inference ===\n",
			cfg.Name, float64(cfg.MLPWeightBytes())/(1<<20), cfg.Tables*cfg.Lookups)

		// Host (DRAM-resident) single-stream inference cost.
		dram := rmssd.NewDRAM(m)
		done, bd := dram.InferTiming(0, sparseFor(cfg))
		fmt.Printf("host DRAM inference: %v (MLP share %.0f%%)\n",
			done, 100*float64(bd.MLP())/float64(bd.Total()))

		// Full RM-SSD: the kernel search picks the device batch that
		// converts the model to embedding-dominated (Rule Three).
		dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
		fmt.Printf("kernel search chose device batch %d\n", dev.NBatch())
		fmt.Println("throughput scaling with device batch size:")
		for _, b := range []int{1, 2, 4, 8, 16} {
			marker := ""
			if b == dev.NBatch() {
				marker = "  <- conversion point (Rule Three)"
			}
			fmt.Printf("  batch %2d: %8.0f QPS%s\n", b, dev.SteadyStateQPS(b), marker)
		}

		// The naive in-storage mapping for contrast (no decomposition,
		// no composition, no pipelining).
		naive, err := rmssd.NewNaiveDevice(cfg, rmssd.DeviceOptions{})
		if err != nil {
			panic(err)
		}
		nb := dev.NBatch()
		fmt.Printf("at batch %d: RM-SSD %.0f QPS vs RM-SSD-Naive %.0f QPS vs host DRAM %.0f QPS\n\n",
			nb, dev.SteadyStateQPS(nb), naive.SteadyStateQPS(nb),
			float64(nb)/hostBatchSeconds(m, nb))
	}
}

// sparseFor builds a deterministic sparse input for the model.
func sparseFor(cfg rmssd.ModelConfig) [][]int64 {
	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 3,
	})
	return gen.Inference()
}

// hostBatchSeconds prices one host batch iteration in seconds.
func hostBatchSeconds(m *rmssd.Model, b int) float64 {
	d := m.HostOverheadTime() + m.SLSComputeTimeBatch(b) +
		m.BottomTimeBatch(b) + m.TopTimeBatch(b)
	return d.Seconds()
}
