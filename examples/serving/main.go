// Online serving: an RM-SSD behind a batching request queue with Poisson
// arrivals, the deployment shape the paper's SLA motivation describes.
// Shows tail latency as offered load approaches device capacity.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"time"

	"rmssd"
	"rmssd/internal/serving"
)

func main() {
	cfg := rmssd.RMC1()
	cfg.RowsPerTable = cfg.RowsForBudget(256 << 20)
	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})

	srv := serving.DeviceServer{
		Interval: func(n int) time.Duration {
			return time.Duration(float64(n) / dev.SteadyStateQPS(n) * 1e9)
		},
		Latency: func(n int) time.Duration { return dev.Latency(n) },
	}
	capacity := dev.SteadyStateQPS(16)
	fmt.Printf("RM-SSD %s capacity: %.0f QPS (batch 16)\n\n", cfg.Name, capacity)
	fmt.Printf("%-12s %-12s %-10s %-10s %-10s\n", "load", "throughput", "batch", "P50", "P99")

	for _, frac := range []float64{0.2, 0.5, 0.8, 0.95} {
		res, err := serving.Run(srv, serving.Config{
			ArrivalRate: frac * capacity,
			MaxBatch:    16,
			MaxWait:     2 * time.Millisecond,
			Requests:    3000,
			Seed:        7,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %-12s %-10.1f %-10s %-10s\n",
			fmt.Sprintf("%.0f%% cap", 100*frac),
			fmt.Sprintf("%.0f QPS", res.ThroughputQPS),
			res.MeanBatch,
			res.P50.Round(10*time.Microsecond),
			res.P99.Round(10*time.Microsecond))
	}
	fmt.Println("\nthe batcher absorbs load by growing batches toward the device's")
	fmt.Println("embedding-bound plateau; P99 stays bounded until capacity is reached.")
}
