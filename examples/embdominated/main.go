// Embedding-dominated workload: RMC2 (32 tables x 120 lookups at dim 64)
// compared across the naive SSD deployment, RecSSD and the full RM-SSD.
// This is the regime where the Embedding Lookup Engine's vector-grained
// reads pay off: the paper's Fig. 11/12 story.
//
//	go run ./examples/embdominated
package main

import (
	"fmt"
	"time"

	"rmssd"
)

func main() {
	cfg := rmssd.RMC2()
	cfg.RowsPerTable = cfg.RowsForBudget(512 << 20) // 512 MiB demo tables
	fmt.Printf("embedding-dominated model %s: %d vectors pooled per inference\n\n",
		cfg.Name, cfg.Tables*cfg.Lookups)

	gen := rmssd.MustNewTrace(rmssd.TraceConfig{
		Tables: cfg.Tables, Rows: cfg.RowsPerTable, Lookups: cfg.Lookups, Seed: 7,
	})

	const inferences = 40

	// SSD-S: vectors read one by one through the file system with a
	// DRAM-starved page cache.
	env, err := rmssd.NewEnv(cfg, rmssd.DefaultGeometry())
	if err != nil {
		panic(err)
	}
	ssds := rmssd.NewSSDS(env)
	var now time.Duration // simulated time (sim.Time is a Duration alias)
	for i := 0; i < inferences; i++ {
		done, _ := ssds.InferTiming(now, gen.Inference())
		now = done
	}
	ssdsTime := time.Duration(now) / inferences
	amp := ssds.Host().Stats().Amplification()
	fmt.Printf("SSD-S:  %8v per inference (read amplification %.1fx)\n", ssdsTime.Round(time.Microsecond), amp)

	// RecSSD: page-grained in-SSD pooling plus a host vector cache.
	env2, err := rmssd.NewEnv(cfg, rmssd.DefaultGeometry())
	if err != nil {
		panic(err)
	}
	rec := rmssd.NewRecSSD(env2)
	now = 0
	for i := 0; i < inferences; i++ {
		done, _ := rec.InferTiming(now, gen.Inference())
		now = done
	}
	recTime := time.Duration(now) / inferences
	fmt.Printf("RecSSD: %8v per inference (host cache hit %.0f%%)\n",
		recTime.Round(time.Microsecond), 100*rec.Cache().HitRatio())

	// Full RM-SSD: vector-grained lookups and in-storage MLP.
	dev := rmssd.MustNewDevice(cfg, rmssd.DeviceOptions{})
	qps := dev.SteadyStateQPS(1)
	rmTime := time.Duration(float64(time.Second) / qps)
	fmt.Printf("RM-SSD: %8v per inference (steady state, %.0f QPS)\n\n", rmTime.Round(time.Microsecond), qps)

	fmt.Printf("RM-SSD speedup: %.1fx over SSD-S, %.1fx over RecSSD\n",
		float64(ssdsTime)/float64(rmTime), float64(recTime)/float64(rmTime))
	fmt.Println("\nwhy: every lookup moves only the 256-byte vector over the flash")
	fmt.Println("channel bus instead of a 4 KiB page, and pooling happens beside the")
	fmt.Println("flash, so only 32 pooled vectors ever cross PCIe.")
}
